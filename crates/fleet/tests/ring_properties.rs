//! Property and golden tests of the consistent-hash ring.
//!
//! Two contracts matter to the fleet:
//!
//! * **bounded remapping** — growing an N-replica ring by one remaps only
//!   ~K/(N+1) of K keys (that is the whole point of consistent hashing:
//!   a join or a death does not invalidate every replica's cache); and
//! * **cross-process determinism** — the router and every replica compute
//!   ownership independently, so routing must depend only on the member
//!   set and the key, never on process state. The golden values pin the
//!   FNV-1a-based placement so an accidental hash change cannot slip
//!   through a refactor unnoticed.

use galvatron_fleet::{plan_key_hash, stable_hash, HashRing};
use galvatron_serve::PlanKey;
use proptest::prelude::*;

fn key(model: u64, fingerprint: u64, budget: u64) -> PlanKey {
    PlanKey {
        model_json: format!("{{\"layers\":{model},\"hidden\":512}}"),
        topology_fingerprint: fingerprint,
        budget_bytes: budget,
    }
}

/// A spread of sampled keys, deterministic (no process-seeded hashing
/// anywhere near this test).
fn sample_keys(count: usize) -> Vec<PlanKey> {
    (0..count as u64)
        .map(|i| {
            key(
                i % 13,
                0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i + 1),
                (6 + (i % 3) * 2) << 30,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// Adding one replica to an N-replica ring remaps at most ~K/N of K
    /// sampled keys (with slack for vnode imbalance), and never moves a
    /// key between two replicas that were both already present.
    #[test]
    fn adding_a_replica_remaps_a_bounded_fraction(
        n in 2usize..=8,
        new_id in 100usize..200,
        key_salt in 0u64..1000,
    ) {
        let k = 400usize;
        let keys: Vec<PlanKey> = (0..k as u64)
            .map(|i| key(i ^ key_salt, key_salt.wrapping_mul(i + 7), (6 + (i % 3) * 2) << 30))
            .collect();

        let members: Vec<usize> = (0..n).collect();
        let before = HashRing::with_members(&members);
        let mut after = before.clone();
        after.add(new_id);

        let mut moved = 0usize;
        for key in &keys {
            let old = before.route(key).unwrap();
            let new = after.route(key).unwrap();
            if old != new {
                // A remapped key may only move *to* the new replica.
                prop_assert_eq!(
                    new, new_id,
                    "key moved between two pre-existing replicas"
                );
                moved += 1;
            }
        }
        // Expectation is K/(N+1); allow 2.5× for vnode imbalance at 64
        // vnodes. A naive `hash % n` scheme would remap ~K·n/(n+1) keys
        // (over 85% here) and fail this bound immediately.
        let bound = (k as f64 * 2.5 / (n as f64 + 1.0)).ceil() as usize;
        prop_assert!(
            moved <= bound,
            "{moved}/{k} keys remapped joining a {n}-replica ring (bound {bound})"
        );
        // And the join must actually take some keyspace.
        prop_assert!(moved > 0, "new replica owns nothing");
    }

    /// Routing is a pure function of (members, key): rebuilding the ring
    /// in any insertion order gives identical ownership for every key.
    #[test]
    fn routing_is_insertion_order_independent(
        mut ids in proptest::collection::vec(0usize..64, 2..8),
    ) {
        ids.sort_unstable();
        ids.dedup();
        let forward = HashRing::with_members(&ids);
        let mut reversed_ids = ids.clone();
        reversed_ids.reverse();
        let reversed = HashRing::with_members(&reversed_ids);
        for key in sample_keys(128) {
            prop_assert_eq!(forward.route(&key), reversed.route(&key));
        }
    }

    /// Removing and re-adding the same replica restores the exact
    /// pre-removal ownership (failover and recovery are symmetric).
    #[test]
    fn remove_then_readd_is_identity(
        n in 2usize..=6,
        victim_idx in 0usize..6,
    ) {
        let members: Vec<usize> = (0..n).collect();
        let victim = members[victim_idx % n];
        let original = HashRing::with_members(&members);
        let mut ring = original.clone();
        ring.remove(victim);
        ring.add(victim);
        for key in sample_keys(128) {
            prop_assert_eq!(original.route(&key), ring.route(&key));
        }
    }
}

/// Golden placement values. These pin the exact FNV-1a + vnode scheme:
/// if any constant, separator or vnode formula changes, a mixed-version
/// fleet would route the same key to different owners from the router and
/// from a gossiping replica — this test is the tripwire.
#[test]
fn golden_routing_values_are_stable_across_processes() {
    // FNV-1a test vectors.
    assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(stable_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(stable_hash(b"foobar"), 0x8594_4171_f739_67e8);

    // Key hashes include model JSON, fingerprint and budget — all three
    // must matter.
    let base = key(1, 42, 8 << 30);
    let h = plan_key_hash(&base);
    assert_ne!(h, plan_key_hash(&key(2, 42, 8 << 30)));
    assert_ne!(h, plan_key_hash(&key(1, 43, 8 << 30)));
    assert_ne!(h, plan_key_hash(&key(1, 42, 6 << 30)));

    // Pinned ownership on a 4-replica ring for a fixed key sample. These
    // values were computed once from the shipped algorithm; equality here
    // means a fresh process (or another machine) routes identically.
    let ring = HashRing::with_members(&[0, 1, 2, 3]);
    let owners: Vec<usize> = sample_keys(16)
        .iter()
        .map(|key| ring.route(key).unwrap())
        .collect();
    assert_eq!(
        owners, GOLDEN,
        "ring placement changed — this breaks rolling fleet upgrades"
    );
}

/// The pinned owner sequence for `sample_keys(16)` on ring `{0,1,2,3}`.
/// Regenerate (only with a deliberate, documented protocol bump) by
/// running `print_golden_owners` below with `-- --ignored --nocapture`.
const GOLDEN: [usize; 16] = [1, 0, 2, 3, 2, 1, 3, 3, 1, 2, 3, 0, 2, 3, 3, 3];

#[test]
#[ignore = "generator: prints the golden owner table for maintenance"]
fn print_golden_owners() {
    let ring = HashRing::with_members(&[0, 1, 2, 3]);
    let owners: Vec<usize> = sample_keys(16)
        .iter()
        .map(|key| ring.route(key).unwrap())
        .collect();
    println!("{owners:?}");
}
