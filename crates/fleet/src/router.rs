//! The fleet front-end: route each plan question to the replica that owns
//! its cache key, fail over transparently when a replica dies.
//!
//! The router speaks the same JSONL protocol as a replica, so clients do
//! not know (or care) whether they talk to one daemon or a fleet. For a
//! `Plan` request it computes the key's ring position, forwards the
//! client's **raw request line** to the owning replica, and relays the
//! replica's **raw response line** back — no re-serialization anywhere on
//! the path, so the stable-bytes contract survives the hop untouched
//! (byte-identical answers whether a client asks a replica directly or
//! through the router, cached/coalesced envelope flags included).
//!
//! Failure handling is reactive, not probed: the first request whose
//! forward fails (after one reconnect attempt — the pooled connection may
//! simply be stale) marks the replica dead, removes it from the ring, and
//! retries against the key's next owner. Consistent hashing makes that
//! retry exactly the failover the gossip layer pre-warmed: the next ring
//! successor is where the dead replica's answers were replicated.
//!
//! `FleetCheck` is the router-only conformance probe: it puts the same
//! question to **every** live replica and reports whether the serialized
//! answers are byte-identical — the cross-replica identity gate the CI
//! smoke and the fleet bench assert on.

use crate::event::{spawn_event_loop, EventLoopConfig, EventLoopHandle, LineHandler, ResponseSlot};
use crate::ring::{plan_key_hash, HashRing};
use galvatron_obs::trace::{link_fields, PHASE_RELAY_HOP};
use galvatron_obs::{
    child_span_id, MetricsSnapshot, Obs, SlowRing, SlowTraceEntry, SpanLink, TraceContext,
};
use galvatron_serve::{
    BoundedQueue, ErrorCode, FleetCheckReport, PlanBody, PlanClient, PlanKey, PushError,
    RequestBody, ServeError, ServeStats, WireRequest, WireResponse, WireResult, WireTraceContext,
    PROTOCOL_VERSION,
};
use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TICK: Duration = Duration::from_millis(100);

/// What clients are told to wait before retrying when no replica is live.
const UNAVAILABLE_RETRY_MS: u64 = 200;

/// K-slowest traced requests the router keeps (and the cap it applies to
/// the fleet-merged `/trace/slow` export).
const SLOW_RING_CAPACITY: usize = 32;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; `127.0.0.1:0` picks a free loopback port.
    pub addr: String,
    /// The initial fleet membership.
    pub replicas: Vec<(usize, SocketAddr)>,
    /// Forwarder threads (each holds its own pooled connections to every
    /// replica; minimum 1).
    pub forwarders: usize,
    /// Bounded queue of requests waiting for a forwarder.
    pub queue_capacity: usize,
    /// Hard cap on concurrently open client connections.
    pub max_connections: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            replicas: Vec::new(),
            forwarders: 4,
            queue_capacity: 256,
            max_connections: 16_384,
        }
    }
}

/// Live membership: the ring and the address book shrink together when a
/// replica is marked dead; dead ids are remembered for `/healthz`.
struct Membership {
    ring: HashRing,
    addrs: HashMap<usize, SocketAddr>,
    dead: BTreeSet<usize>,
}

/// Trace state for one routed request: captured at admission so the
/// relay-hop slice covers router queueing, the forward and any failover.
struct RouteTrace {
    /// The client's trace position (parent of the router's `route_plan`
    /// span).
    client: TraceContext,
    /// The router's `route_plan` context; the downstream replica's
    /// `serve_request` span parents under it.
    server: TraceContext,
    /// Whether the client opted in to an attribution record.
    want_attribution: bool,
    /// When the request line was admitted.
    received: Instant,
    /// `received` on the obs epoch clock.
    received_epoch: f64,
}

struct RouteJob {
    /// Envelope identity for router-originated error answers.
    id: u64,
    name: String,
    kind: JobKind,
    slot: ResponseSlot,
}

enum JobKind {
    /// Relay `line` to the owner of `hash`, failing over along the ring.
    Forward {
        line: String,
        hash: u64,
        trace: Option<RouteTrace>,
    },
    /// `FleetCheck`: ask every live replica and compare answer bytes.
    Broadcast { body: PlanBody },
}

struct Shared {
    membership: Mutex<Membership>,
    queue: BoundedQueue<RouteJob>,
    obs: Obs,
    slow: SlowRing,
    stop: AtomicBool,
    requests: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    shed: AtomicU64,
}

impl Shared {
    fn live_replicas(&self) -> Vec<(usize, SocketAddr)> {
        let membership = self.membership.lock().unwrap();
        let mut live: Vec<(usize, SocketAddr)> = membership
            .addrs
            .iter()
            .map(|(&id, &addr)| (id, addr))
            .collect();
        live.sort_unstable_by_key(|&(id, _)| id);
        live
    }

    /// Remove a replica that failed a forward. Idempotent — concurrent
    /// forwarders may both observe the same death.
    fn mark_dead(&self, id: usize) {
        let mut membership = self.membership.lock().unwrap();
        if membership.addrs.remove(&id).is_some() {
            membership.ring.remove(id);
            membership.dead.insert(id);
            self.failovers.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn refresh_metrics(&self) {
        let registry = self.obs.registry();
        let labels = [("instance", "router")];
        registry
            .gauge_with("fleet_router_live_replicas", &labels)
            .set(self.membership.lock().unwrap().addrs.len() as f64);
        registry
            .gauge_with("serve_queue_depth", &labels)
            .set(self.queue.len() as f64);
        for (name, total) in [
            ("serve_requests_total", self.requests.load(Ordering::SeqCst)),
            (
                "fleet_router_forwarded_total",
                self.forwarded.load(Ordering::SeqCst),
            ),
            (
                "fleet_router_failovers_total",
                self.failovers.load(Ordering::SeqCst),
            ),
            ("serve_shed_total", self.shed.load(Ordering::SeqCst)),
        ] {
            let counter = registry.counter_with(name, &labels);
            counter.inc_by(total.saturating_sub(counter.get()));
        }
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            shed: self.shed.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            ..ServeStats::default()
        }
    }

    fn error_response(
        &self,
        id: u64,
        name: String,
        code: ErrorCode,
        message: String,
        retry_after_ms: Option<u64>,
    ) -> WireResponse {
        WireResponse {
            id,
            name,
            cached: false,
            coalesced: false,
            attribution: None,
            result: WireResult::Error(ServeError {
                code,
                message,
                retry_after_ms,
            }),
        }
    }
}

fn fill_json(slot: &ResponseSlot, response: &WireResponse) {
    if let Ok(line) = serde_json::to_string(response) {
        slot.fill(line);
    }
}

struct RouterHandler {
    shared: Arc<Shared>,
}

impl LineHandler for RouterHandler {
    fn on_line(&self, line: &str, slot: ResponseSlot) {
        let shared = &self.shared;
        let received = Instant::now();
        let received_epoch = shared.obs.now_seconds();
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let request: WireRequest = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => {
                fill_json(
                    &slot,
                    &shared.error_response(
                        0,
                        String::new(),
                        ErrorCode::BadRequest,
                        format!("unparseable request line: {e}"),
                        None,
                    ),
                );
                return;
            }
        };
        let (id, name) = (request.id, request.name.clone());
        let kind = match request.body {
            RequestBody::Ping => {
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        attribution: None,
                        result: WireResult::Pong(PROTOCOL_VERSION),
                    },
                );
                return;
            }
            RequestBody::Stats => {
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        attribution: None,
                        result: WireResult::Stats(shared.stats()),
                    },
                );
                return;
            }
            RequestBody::Metrics => {
                shared.refresh_metrics();
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        attribution: None,
                        result: WireResult::Metrics(
                            shared.obs.registry().snapshot().to_prometheus(),
                        ),
                    },
                );
                return;
            }
            RequestBody::MetricsPull => {
                shared.refresh_metrics();
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        attribution: None,
                        result: WireResult::MetricsState(shared.obs.registry().snapshot()),
                    },
                );
                return;
            }
            RequestBody::SlowTracePull => {
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        attribution: None,
                        result: WireResult::SlowTraces(shared.slow.drain()),
                    },
                );
                return;
            }
            RequestBody::SnapshotPull { .. } | RequestBody::GossipPush { .. } => {
                fill_json(
                    &slot,
                    &shared.error_response(
                        id,
                        name,
                        ErrorCode::BadRequest,
                        "the router holds no cache; address peer-protocol requests to a replica"
                            .to_string(),
                        None,
                    ),
                );
                return;
            }
            RequestBody::Plan(ref body) => {
                let Ok(model_json) = serde_json::to_string(&body.model) else {
                    fill_json(
                        &slot,
                        &shared.error_response(
                            id,
                            name,
                            ErrorCode::BadRequest,
                            "model does not serialize canonically".to_string(),
                            None,
                        ),
                    );
                    return;
                };
                let key = PlanKey {
                    model_json,
                    topology_fingerprint: body.topology.fingerprint(),
                    budget_bytes: body.budget_bytes,
                };
                let hash = plan_key_hash(&key);
                // Traced requests have the forwarded line re-stamped with
                // the router's `route_plan` context, so the replica's
                // serve_request span parents under the router and the
                // client sees one linked tree. Untraced requests keep the
                // raw-line relay — the v2 byte path is untouched.
                let trace = request
                    .trace
                    .as_ref()
                    .and_then(|wire| wire.context().map(|ctx| (ctx, wire.attribution)));
                match trace {
                    Some((client, want_attribution)) => {
                        let server = client.child("route_plan", 0);
                        let downstream = WireRequest {
                            id,
                            name: name.clone(),
                            trace: Some(WireTraceContext::from_context(server, want_attribution)),
                            body: RequestBody::Plan(body.clone()),
                        };
                        let line =
                            serde_json::to_string(&downstream).unwrap_or_else(|_| line.to_string());
                        JobKind::Forward {
                            line,
                            hash,
                            trace: Some(RouteTrace {
                                client,
                                server,
                                want_attribution,
                                received,
                                received_epoch,
                            }),
                        }
                    }
                    None => JobKind::Forward {
                        line: line.to_string(),
                        hash,
                        trace: None,
                    },
                }
            }
            RequestBody::FleetCheck(body) => JobKind::Broadcast { body },
        };
        let job = RouteJob {
            id,
            name: name.clone(),
            kind,
            slot: slot.clone(),
        };
        match shared.queue.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full) => {
                shared.shed.fetch_add(1, Ordering::SeqCst);
                fill_json(
                    &slot,
                    &shared.error_response(
                        id,
                        name,
                        ErrorCode::Overloaded,
                        format!("router queue full (capacity {})", shared.queue.capacity()),
                        Some(50),
                    ),
                );
            }
            Err(PushError::Closed) => {
                fill_json(
                    &slot,
                    &shared.error_response(
                        id,
                        name,
                        ErrorCode::ShuttingDown,
                        "router is shutting down".to_string(),
                        Some(50),
                    ),
                );
            }
        }
    }

    fn on_http_get(&self, path: &str) -> (String, String, String) {
        let shared = &self.shared;
        match path {
            "/metrics" => {
                // Fleet federation: one scrape of the router answers for
                // the whole fleet — every live replica's deterministic
                // snapshot is pulled and merged under its instance label
                // next to the router's own series.
                shared.refresh_metrics();
                let mut parts: Vec<(String, MetricsSnapshot)> =
                    vec![("router".to_string(), shared.obs.registry().snapshot())];
                for (id, addr) in shared.live_replicas() {
                    // A failed scrape just omits that replica; scraping
                    // is not the failure detector.
                    if let Ok(snapshot) =
                        PlanClient::connect(addr).and_then(|mut c| c.metrics_pull())
                    {
                        parts.push((format!("replica-{id}"), snapshot));
                    }
                }
                (
                    "200 OK".to_string(),
                    "text/plain; version=0.0.4".to_string(),
                    MetricsSnapshot::merge_labelled(&parts).to_prometheus(),
                )
            }
            "/healthz" | "/health" => {
                let (live, dead, vnodes) = {
                    let membership = shared.membership.lock().unwrap();
                    (
                        membership.addrs.len(),
                        membership.dead.len(),
                        membership.ring.len() * membership.ring.vnodes_per_member(),
                    )
                };
                let draining = shared.stop.load(Ordering::SeqCst);
                let status = if draining {
                    "draining"
                } else if live == 0 {
                    "unavailable"
                } else {
                    "ok"
                };
                let code = if status == "ok" {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                let body = format!(
                    "{{\"status\":\"{status}\",\"instance\":\"router\",\"live\":{live},\
                     \"dead\":{dead},\"vnodes\":{vnodes}}}\n"
                );
                (code.to_string(), "application/json".to_string(), body)
            }
            "/trace/slow" => {
                // Merge the router's own ring with every live replica's,
                // slowest first, capped at the ring capacity.
                let mut entries = shared.slow.drain();
                for (_, addr) in shared.live_replicas() {
                    if let Ok(pulled) =
                        PlanClient::connect(addr).and_then(|mut c| c.slow_trace_pull())
                    {
                        entries.extend(pulled);
                    }
                }
                entries.sort_by(|a, b| {
                    b.total_seconds
                        .partial_cmp(&a.total_seconds)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.trace_id.cmp(&b.trace_id))
                });
                entries.truncate(SLOW_RING_CAPACITY);
                let body = serde_json::to_string(&entries).unwrap_or_else(|_| "[]".to_string());
                (
                    "200 OK".to_string(),
                    "application/json".to_string(),
                    format!("{body}\n"),
                )
            }
            _ => (
                "404 Not Found".to_string(),
                "text/plain".to_string(),
                format!("unknown path {path}; try /metrics, /healthz or /trace/slow\n"),
            ),
        }
    }
}

/// A forwarder thread: pooled connections to each replica, one request
/// relayed at a time.
fn forwarder_loop(shared: &Arc<Shared>) {
    let mut pool: HashMap<usize, PlanClient> = HashMap::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) && shared.queue.is_empty() {
            return;
        }
        let Some(job) = shared.queue.pop(TICK) else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            fill_json(
                &job.slot,
                &shared.error_response(
                    job.id,
                    job.name,
                    ErrorCode::ShuttingDown,
                    "router is shutting down".to_string(),
                    Some(50),
                ),
            );
            continue;
        }
        match job.kind {
            JobKind::Forward { line, hash, trace } => {
                forward(
                    shared,
                    &mut pool,
                    job.id,
                    job.name,
                    &line,
                    hash,
                    trace.as_ref(),
                    &job.slot,
                );
            }
            JobKind::Broadcast { body } => {
                broadcast(shared, &mut pool, job.id, job.name, body, &job.slot);
            }
        }
    }
}

/// Relay `line` to the owner of `hash`; on failure mark the owner dead and
/// retry against the next — consistent hashing guarantees the retry lands
/// on the replica that inherited the key (and, with gossip, its warm
/// answer).
#[allow(clippy::too_many_arguments)]
fn forward(
    shared: &Arc<Shared>,
    pool: &mut HashMap<usize, PlanClient>,
    id: u64,
    name: String,
    line: &str,
    hash: u64,
    trace: Option<&RouteTrace>,
    slot: &ResponseSlot,
) {
    // Each live replica gets at most one (reconnect-included) try per
    // request; when all are gone the client hears `Unavailable`.
    loop {
        let target = {
            let membership = shared.membership.lock().unwrap();
            membership
                .ring
                .route_hash(hash)
                .and_then(|owner| membership.addrs.get(&owner).map(|&addr| (owner, addr)))
        };
        let Some((owner, addr)) = target else {
            fill_json(
                slot,
                &shared.error_response(
                    id,
                    name,
                    ErrorCode::Unavailable,
                    "no live replica to forward to".to_string(),
                    Some(UNAVAILABLE_RETRY_MS),
                ),
            );
            return;
        };
        match relay_once(pool, owner, addr, line) {
            Ok(response) => {
                shared.forwarded.fetch_add(1, Ordering::SeqCst);
                let response = match trace {
                    Some(t) => finish_traced_forward(shared, t, response),
                    None => response,
                };
                slot.fill(response);
                return;
            }
            Err(_) => {
                shared.mark_dead(owner);
                // Loop: the ring now routes `hash` to the next owner.
            }
        }
    }
}

/// Close out a traced forward: record the router's `route_plan` span and,
/// when the client asked for attribution, append the `relay_hop` slice
/// (router wall time minus the replica's total — queueing, forwarding and
/// any failover) to the replica's record and lift the total to the
/// router-observed wall time.
fn finish_traced_forward(shared: &Arc<Shared>, trace: &RouteTrace, response: String) -> String {
    let total = trace.received.elapsed().as_secs_f64();
    let mut fields = link_fields(&SpanLink {
        trace_id: trace.server.trace_id,
        span_id: trace.server.span_id,
        parent_span_id: trace.client.span_id,
    });
    fields.push(("instance".to_string(), "router".into()));
    let route_span = galvatron_obs::SpanRecord {
        name: "route_plan".to_string(),
        start_seconds: trace.received_epoch,
        duration_seconds: total,
        fields,
    };
    shared.obs.sink().record(route_span.clone());
    if !trace.want_attribution {
        return response;
    }
    // Attribution rides the parsed envelope; a response that does not
    // parse (or carries no record) is relayed untouched.
    let Ok(mut parsed) = serde_json::from_str::<WireResponse>(&response) else {
        return response;
    };
    let Some(mut attr) = parsed.attribution.take() else {
        return response;
    };
    let relay_hop = (total - attr.total_seconds).max(0.0);
    attr.push_phase(PHASE_RELAY_HOP, relay_hop);
    attr.total_seconds = total;
    shared
        .obs
        .registry()
        .wall_histogram_with(
            "serve_phase_seconds",
            &[("instance", "router"), ("phase", PHASE_RELAY_HOP)],
        )
        .observe(relay_hop);
    // The relay slice as its own linked span, so span dumps attribute
    // every phase — the replica's sink holds the serving phases, this is
    // the one only the router can measure.
    let mut relay_fields = link_fields(&SpanLink {
        trace_id: trace.server.trace_id,
        span_id: child_span_id(
            trace.server.trace_id,
            trace.server.span_id,
            PHASE_RELAY_HOP,
            0,
        ),
        parent_span_id: trace.server.span_id,
    });
    relay_fields.push(("instance".to_string(), "router".into()));
    shared.obs.sink().record(galvatron_obs::SpanRecord {
        name: PHASE_RELAY_HOP.to_string(),
        start_seconds: trace.received_epoch,
        duration_seconds: relay_hop,
        fields: relay_fields,
    });
    let mut spans = vec![route_span];
    spans.extend(attr.to_spans(
        "serve_request",
        &trace.server.span_id.to_hex(),
        trace.received_epoch,
    ));
    shared.slow.offer(SlowTraceEntry {
        trace_id: attr.trace_id.clone(),
        name: "route_plan".to_string(),
        instance: "router".to_string(),
        total_seconds: attr.total_seconds,
        spans,
    });
    parsed.attribution = Some(attr);
    serde_json::to_string(&parsed).unwrap_or(response)
}

/// One relay attempt against a specific replica, reconnecting once in case
/// the pooled connection went stale across a replica restart.
fn relay_once(
    pool: &mut HashMap<usize, PlanClient>,
    owner: usize,
    addr: SocketAddr,
    line: &str,
) -> std::io::Result<String> {
    for attempt in 0..2 {
        let client = match pool.entry(owner) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(PlanClient::connect(addr)?)
            }
        };
        match client.round_trip_raw(line) {
            Ok(response) => return Ok(response),
            Err(e) => {
                pool.remove(&owner);
                if attempt == 1 {
                    return Err(e);
                }
            }
        }
    }
    unreachable!("relay_once returns within two attempts")
}

/// `FleetCheck`: ask every live replica the same plan question and compare
/// the serialized `result` payloads byte-for-byte.
fn broadcast(
    shared: &Arc<Shared>,
    pool: &mut HashMap<usize, PlanClient>,
    id: u64,
    name: String,
    body: PlanBody,
    slot: &ResponseSlot,
) {
    let request = WireRequest {
        id,
        name: name.clone(),
        trace: None,
        body: RequestBody::Plan(body),
    };
    let Ok(line) = serde_json::to_string(&request) else {
        fill_json(
            slot,
            &shared.error_response(
                id,
                name,
                ErrorCode::BadRequest,
                "request does not serialize".to_string(),
                None,
            ),
        );
        return;
    };
    let mut payloads: Vec<String> = Vec::new();
    for (replica_id, addr) in shared.live_replicas() {
        match relay_once(pool, replica_id, addr, &line) {
            Ok(response) => match serde_json::from_str::<WireResponse>(&response) {
                Ok(parsed) => {
                    if let Ok(payload) = serde_json::to_string(&parsed.result) {
                        payloads.push(payload);
                    }
                }
                Err(_) => shared.mark_dead(replica_id),
            },
            Err(_) => shared.mark_dead(replica_id),
        }
    }
    if payloads.is_empty() {
        fill_json(
            slot,
            &shared.error_response(
                id,
                name,
                ErrorCode::Unavailable,
                "no live replica answered the fleet check".to_string(),
                Some(UNAVAILABLE_RETRY_MS),
            ),
        );
        return;
    }
    let byte_identical = payloads.iter().all(|p| p == &payloads[0]);
    fill_json(
        slot,
        &WireResponse {
            id,
            name,
            cached: false,
            coalesced: false,
            attribution: None,
            result: WireResult::Fleet(FleetCheckReport {
                replicas: payloads.len(),
                byte_identical,
                answer_json: payloads.swap_remove(0),
            }),
        },
    );
}

/// The router constructor.
pub struct FleetRouter;

/// Handle to a running router.
pub struct RouterHandle {
    shared: Arc<Shared>,
    event: Option<EventLoopHandle>,
    forwarders: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl FleetRouter {
    /// Bind and start the event loop and forwarder pool.
    pub fn start(config: RouterConfig, obs: Obs) -> std::io::Result<RouterHandle> {
        let ids: Vec<usize> = config.replicas.iter().map(|&(id, _)| id).collect();
        let shared = Arc::new(Shared {
            membership: Mutex::new(Membership {
                ring: HashRing::with_members(&ids),
                addrs: config.replicas.iter().copied().collect(),
                dead: BTreeSet::new(),
            }),
            queue: BoundedQueue::new(config.queue_capacity),
            obs,
            slow: SlowRing::new(SLOW_RING_CAPACITY),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let event = spawn_event_loop(
            &config.addr,
            Arc::new(RouterHandler {
                shared: Arc::clone(&shared),
            }),
            EventLoopConfig {
                max_connections: config.max_connections,
            },
        )?;
        let addr = event.addr();
        let forwarders = (0..config.forwarders.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || forwarder_loop(&shared))
            })
            .collect();
        Ok(RouterHandle {
            shared,
            event: Some(event),
            forwarders,
            addr,
        })
    }
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ids of replicas currently considered live.
    pub fn live_replicas(&self) -> Vec<usize> {
        self.shared
            .live_replicas()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Requests that failed over to another replica after an owner death.
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::SeqCst)
    }

    /// Add (or re-add) a replica to the ring — e.g. one that just
    /// warm-joined the fleet.
    pub fn add_replica(&self, id: usize, addr: SocketAddr) {
        let mut membership = self.shared.membership.lock().unwrap();
        membership.ring.add(id);
        membership.addrs.insert(id, addr);
        membership.dead.remove(&id);
    }

    /// Remove a replica administratively (planned drain, as opposed to the
    /// failure-driven removal forwarders do on their own).
    pub fn remove_replica(&self, id: usize) {
        self.shared.mark_dead(id);
    }

    /// Stop accepting, answer queued requests with `ShuttingDown`, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for forwarder in self.forwarders.drain(..) {
            let _ = forwarder.join();
        }
        while let Some(job) = self.shared.queue.pop(Duration::ZERO) {
            fill_json(
                &job.slot,
                &self.shared.error_response(
                    job.id,
                    job.name,
                    ErrorCode::ShuttingDown,
                    "router is shutting down".to_string(),
                    Some(50),
                ),
            );
        }
        if let Some(event) = self.event.take() {
            event.stop_and_join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }
}
