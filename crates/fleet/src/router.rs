//! The fleet front-end: route each plan question to the replica that owns
//! its cache key, fail over transparently when a replica dies.
//!
//! The router speaks the same JSONL protocol as a replica, so clients do
//! not know (or care) whether they talk to one daemon or a fleet. For a
//! `Plan` request it computes the key's ring position, forwards the
//! client's **raw request line** to the owning replica, and relays the
//! replica's **raw response line** back — no re-serialization anywhere on
//! the path, so the stable-bytes contract survives the hop untouched
//! (byte-identical answers whether a client asks a replica directly or
//! through the router, cached/coalesced envelope flags included).
//!
//! Failure handling is reactive, not probed: the first request whose
//! forward fails (after one reconnect attempt — the pooled connection may
//! simply be stale) marks the replica dead, removes it from the ring, and
//! retries against the key's next owner. Consistent hashing makes that
//! retry exactly the failover the gossip layer pre-warmed: the next ring
//! successor is where the dead replica's answers were replicated.
//!
//! `FleetCheck` is the router-only conformance probe: it puts the same
//! question to **every** live replica and reports whether the serialized
//! answers are byte-identical — the cross-replica identity gate the CI
//! smoke and the fleet bench assert on.

use crate::event::{spawn_event_loop, EventLoopConfig, EventLoopHandle, LineHandler, ResponseSlot};
use crate::ring::{plan_key_hash, HashRing};
use galvatron_obs::Obs;
use galvatron_serve::{
    BoundedQueue, ErrorCode, FleetCheckReport, PlanBody, PlanClient, PlanKey, PushError,
    RequestBody, ServeError, ServeStats, WireRequest, WireResponse, WireResult, PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const TICK: Duration = Duration::from_millis(100);

/// What clients are told to wait before retrying when no replica is live.
const UNAVAILABLE_RETRY_MS: u64 = 200;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; `127.0.0.1:0` picks a free loopback port.
    pub addr: String,
    /// The initial fleet membership.
    pub replicas: Vec<(usize, SocketAddr)>,
    /// Forwarder threads (each holds its own pooled connections to every
    /// replica; minimum 1).
    pub forwarders: usize,
    /// Bounded queue of requests waiting for a forwarder.
    pub queue_capacity: usize,
    /// Hard cap on concurrently open client connections.
    pub max_connections: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            replicas: Vec::new(),
            forwarders: 4,
            queue_capacity: 256,
            max_connections: 16_384,
        }
    }
}

/// Live membership: the ring and the address book shrink together when a
/// replica is marked dead.
struct Membership {
    ring: HashRing,
    addrs: HashMap<usize, SocketAddr>,
}

struct RouteJob {
    /// Envelope identity for router-originated error answers.
    id: u64,
    name: String,
    kind: JobKind,
    slot: ResponseSlot,
}

enum JobKind {
    /// Relay `line` to the owner of `hash`, failing over along the ring.
    Forward { line: String, hash: u64 },
    /// `FleetCheck`: ask every live replica and compare answer bytes.
    Broadcast { body: PlanBody },
}

struct Shared {
    membership: Mutex<Membership>,
    queue: BoundedQueue<RouteJob>,
    obs: Obs,
    stop: AtomicBool,
    requests: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    shed: AtomicU64,
}

impl Shared {
    fn live_replicas(&self) -> Vec<(usize, SocketAddr)> {
        let membership = self.membership.lock().unwrap();
        let mut live: Vec<(usize, SocketAddr)> = membership
            .addrs
            .iter()
            .map(|(&id, &addr)| (id, addr))
            .collect();
        live.sort_unstable_by_key(|&(id, _)| id);
        live
    }

    /// Remove a replica that failed a forward. Idempotent — concurrent
    /// forwarders may both observe the same death.
    fn mark_dead(&self, id: usize) {
        let mut membership = self.membership.lock().unwrap();
        if membership.addrs.remove(&id).is_some() {
            membership.ring.remove(id);
            self.failovers.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn refresh_metrics(&self) {
        let registry = self.obs.registry();
        let labels = [("instance", "router")];
        registry
            .gauge_with("fleet_router_live_replicas", &labels)
            .set(self.membership.lock().unwrap().addrs.len() as f64);
        registry
            .gauge_with("serve_queue_depth", &labels)
            .set(self.queue.len() as f64);
        for (name, total) in [
            ("serve_requests_total", self.requests.load(Ordering::SeqCst)),
            (
                "fleet_router_forwarded_total",
                self.forwarded.load(Ordering::SeqCst),
            ),
            (
                "fleet_router_failovers_total",
                self.failovers.load(Ordering::SeqCst),
            ),
            ("serve_shed_total", self.shed.load(Ordering::SeqCst)),
        ] {
            let counter = registry.counter_with(name, &labels);
            counter.inc_by(total.saturating_sub(counter.get()));
        }
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            shed: self.shed.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            ..ServeStats::default()
        }
    }

    fn error_response(
        &self,
        id: u64,
        name: String,
        code: ErrorCode,
        message: String,
        retry_after_ms: Option<u64>,
    ) -> WireResponse {
        WireResponse {
            id,
            name,
            cached: false,
            coalesced: false,
            result: WireResult::Error(ServeError {
                code,
                message,
                retry_after_ms,
            }),
        }
    }
}

fn fill_json(slot: &ResponseSlot, response: &WireResponse) {
    if let Ok(line) = serde_json::to_string(response) {
        slot.fill(line);
    }
}

struct RouterHandler {
    shared: Arc<Shared>,
}

impl LineHandler for RouterHandler {
    fn on_line(&self, line: &str, slot: ResponseSlot) {
        let shared = &self.shared;
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let request: WireRequest = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => {
                fill_json(
                    &slot,
                    &shared.error_response(
                        0,
                        String::new(),
                        ErrorCode::BadRequest,
                        format!("unparseable request line: {e}"),
                        None,
                    ),
                );
                return;
            }
        };
        let (id, name) = (request.id, request.name.clone());
        let kind = match request.body {
            RequestBody::Ping => {
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        result: WireResult::Pong(PROTOCOL_VERSION),
                    },
                );
                return;
            }
            RequestBody::Stats => {
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        result: WireResult::Stats(shared.stats()),
                    },
                );
                return;
            }
            RequestBody::Metrics => {
                shared.refresh_metrics();
                fill_json(
                    &slot,
                    &WireResponse {
                        id,
                        name,
                        cached: false,
                        coalesced: false,
                        result: WireResult::Metrics(
                            shared.obs.registry().snapshot().to_prometheus(),
                        ),
                    },
                );
                return;
            }
            RequestBody::SnapshotPull { .. } | RequestBody::GossipPush { .. } => {
                fill_json(
                    &slot,
                    &shared.error_response(
                        id,
                        name,
                        ErrorCode::BadRequest,
                        "the router holds no cache; address peer-protocol requests to a replica"
                            .to_string(),
                        None,
                    ),
                );
                return;
            }
            RequestBody::Plan(ref body) => {
                let Ok(model_json) = serde_json::to_string(&body.model) else {
                    fill_json(
                        &slot,
                        &shared.error_response(
                            id,
                            name,
                            ErrorCode::BadRequest,
                            "model does not serialize canonically".to_string(),
                            None,
                        ),
                    );
                    return;
                };
                let key = PlanKey {
                    model_json,
                    topology_fingerprint: body.topology.fingerprint(),
                    budget_bytes: body.budget_bytes,
                };
                JobKind::Forward {
                    line: line.to_string(),
                    hash: plan_key_hash(&key),
                }
            }
            RequestBody::FleetCheck(body) => JobKind::Broadcast { body },
        };
        let job = RouteJob {
            id,
            name: name.clone(),
            kind,
            slot: slot.clone(),
        };
        match shared.queue.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full) => {
                shared.shed.fetch_add(1, Ordering::SeqCst);
                fill_json(
                    &slot,
                    &shared.error_response(
                        id,
                        name,
                        ErrorCode::Overloaded,
                        format!("router queue full (capacity {})", shared.queue.capacity()),
                        Some(50),
                    ),
                );
            }
            Err(PushError::Closed) => {
                fill_json(
                    &slot,
                    &shared.error_response(
                        id,
                        name,
                        ErrorCode::ShuttingDown,
                        "router is shutting down".to_string(),
                        Some(50),
                    ),
                );
            }
        }
    }

    fn on_http_get(&self, path: &str) -> (String, String, String) {
        let shared = &self.shared;
        match path {
            "/metrics" => {
                shared.refresh_metrics();
                (
                    "200 OK".to_string(),
                    "text/plain; version=0.0.4".to_string(),
                    shared.obs.registry().snapshot().to_prometheus(),
                )
            }
            "/healthz" | "/health" => {
                let live = shared.membership.lock().unwrap().addrs.len();
                if shared.stop.load(Ordering::SeqCst) {
                    (
                        "503 Service Unavailable".to_string(),
                        "text/plain".to_string(),
                        "draining instance=router\n".to_string(),
                    )
                } else if live == 0 {
                    (
                        "503 Service Unavailable".to_string(),
                        "text/plain".to_string(),
                        "no live replicas instance=router\n".to_string(),
                    )
                } else {
                    (
                        "200 OK".to_string(),
                        "text/plain".to_string(),
                        format!("ok instance=router live_replicas={live}\n"),
                    )
                }
            }
            _ => (
                "404 Not Found".to_string(),
                "text/plain".to_string(),
                format!("unknown path {path}; try /metrics or /healthz\n"),
            ),
        }
    }
}

/// A forwarder thread: pooled connections to each replica, one request
/// relayed at a time.
fn forwarder_loop(shared: &Arc<Shared>) {
    let mut pool: HashMap<usize, PlanClient> = HashMap::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) && shared.queue.is_empty() {
            return;
        }
        let Some(job) = shared.queue.pop(TICK) else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            fill_json(
                &job.slot,
                &shared.error_response(
                    job.id,
                    job.name,
                    ErrorCode::ShuttingDown,
                    "router is shutting down".to_string(),
                    Some(50),
                ),
            );
            continue;
        }
        match job.kind {
            JobKind::Forward { line, hash } => {
                forward(shared, &mut pool, job.id, job.name, &line, hash, &job.slot);
            }
            JobKind::Broadcast { body } => {
                broadcast(shared, &mut pool, job.id, job.name, body, &job.slot);
            }
        }
    }
}

/// Relay `line` to the owner of `hash`; on failure mark the owner dead and
/// retry against the next — consistent hashing guarantees the retry lands
/// on the replica that inherited the key (and, with gossip, its warm
/// answer).
fn forward(
    shared: &Arc<Shared>,
    pool: &mut HashMap<usize, PlanClient>,
    id: u64,
    name: String,
    line: &str,
    hash: u64,
    slot: &ResponseSlot,
) {
    // Each live replica gets at most one (reconnect-included) try per
    // request; when all are gone the client hears `Unavailable`.
    loop {
        let target = {
            let membership = shared.membership.lock().unwrap();
            membership
                .ring
                .route_hash(hash)
                .and_then(|owner| membership.addrs.get(&owner).map(|&addr| (owner, addr)))
        };
        let Some((owner, addr)) = target else {
            fill_json(
                slot,
                &shared.error_response(
                    id,
                    name,
                    ErrorCode::Unavailable,
                    "no live replica to forward to".to_string(),
                    Some(UNAVAILABLE_RETRY_MS),
                ),
            );
            return;
        };
        match relay_once(pool, owner, addr, line) {
            Ok(response) => {
                shared.forwarded.fetch_add(1, Ordering::SeqCst);
                slot.fill(response);
                return;
            }
            Err(_) => {
                shared.mark_dead(owner);
                // Loop: the ring now routes `hash` to the next owner.
            }
        }
    }
}

/// One relay attempt against a specific replica, reconnecting once in case
/// the pooled connection went stale across a replica restart.
fn relay_once(
    pool: &mut HashMap<usize, PlanClient>,
    owner: usize,
    addr: SocketAddr,
    line: &str,
) -> std::io::Result<String> {
    for attempt in 0..2 {
        let client = match pool.entry(owner) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(PlanClient::connect(addr)?)
            }
        };
        match client.round_trip_raw(line) {
            Ok(response) => return Ok(response),
            Err(e) => {
                pool.remove(&owner);
                if attempt == 1 {
                    return Err(e);
                }
            }
        }
    }
    unreachable!("relay_once returns within two attempts")
}

/// `FleetCheck`: ask every live replica the same plan question and compare
/// the serialized `result` payloads byte-for-byte.
fn broadcast(
    shared: &Arc<Shared>,
    pool: &mut HashMap<usize, PlanClient>,
    id: u64,
    name: String,
    body: PlanBody,
    slot: &ResponseSlot,
) {
    let request = WireRequest {
        id,
        name: name.clone(),
        body: RequestBody::Plan(body),
    };
    let Ok(line) = serde_json::to_string(&request) else {
        fill_json(
            slot,
            &shared.error_response(
                id,
                name,
                ErrorCode::BadRequest,
                "request does not serialize".to_string(),
                None,
            ),
        );
        return;
    };
    let mut payloads: Vec<String> = Vec::new();
    for (replica_id, addr) in shared.live_replicas() {
        match relay_once(pool, replica_id, addr, &line) {
            Ok(response) => match serde_json::from_str::<WireResponse>(&response) {
                Ok(parsed) => {
                    if let Ok(payload) = serde_json::to_string(&parsed.result) {
                        payloads.push(payload);
                    }
                }
                Err(_) => shared.mark_dead(replica_id),
            },
            Err(_) => shared.mark_dead(replica_id),
        }
    }
    if payloads.is_empty() {
        fill_json(
            slot,
            &shared.error_response(
                id,
                name,
                ErrorCode::Unavailable,
                "no live replica answered the fleet check".to_string(),
                Some(UNAVAILABLE_RETRY_MS),
            ),
        );
        return;
    }
    let byte_identical = payloads.iter().all(|p| p == &payloads[0]);
    fill_json(
        slot,
        &WireResponse {
            id,
            name,
            cached: false,
            coalesced: false,
            result: WireResult::Fleet(FleetCheckReport {
                replicas: payloads.len(),
                byte_identical,
                answer_json: payloads.swap_remove(0),
            }),
        },
    );
}

/// The router constructor.
pub struct FleetRouter;

/// Handle to a running router.
pub struct RouterHandle {
    shared: Arc<Shared>,
    event: Option<EventLoopHandle>,
    forwarders: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl FleetRouter {
    /// Bind and start the event loop and forwarder pool.
    pub fn start(config: RouterConfig, obs: Obs) -> std::io::Result<RouterHandle> {
        let ids: Vec<usize> = config.replicas.iter().map(|&(id, _)| id).collect();
        let shared = Arc::new(Shared {
            membership: Mutex::new(Membership {
                ring: HashRing::with_members(&ids),
                addrs: config.replicas.iter().copied().collect(),
            }),
            queue: BoundedQueue::new(config.queue_capacity),
            obs,
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let event = spawn_event_loop(
            &config.addr,
            Arc::new(RouterHandler {
                shared: Arc::clone(&shared),
            }),
            EventLoopConfig {
                max_connections: config.max_connections,
            },
        )?;
        let addr = event.addr();
        let forwarders = (0..config.forwarders.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || forwarder_loop(&shared))
            })
            .collect();
        Ok(RouterHandle {
            shared,
            event: Some(event),
            forwarders,
            addr,
        })
    }
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ids of replicas currently considered live.
    pub fn live_replicas(&self) -> Vec<usize> {
        self.shared
            .live_replicas()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Requests that failed over to another replica after an owner death.
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::SeqCst)
    }

    /// Add (or re-add) a replica to the ring — e.g. one that just
    /// warm-joined the fleet.
    pub fn add_replica(&self, id: usize, addr: SocketAddr) {
        let mut membership = self.shared.membership.lock().unwrap();
        membership.ring.add(id);
        membership.addrs.insert(id, addr);
    }

    /// Remove a replica administratively (planned drain, as opposed to the
    /// failure-driven removal forwarders do on their own).
    pub fn remove_replica(&self, id: usize) {
        self.shared.mark_dead(id);
    }

    /// Stop accepting, answer queued requests with `ShuttingDown`, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for forwarder in self.forwarders.drain(..) {
            let _ = forwarder.join();
        }
        while let Some(job) = self.shared.queue.pop(Duration::ZERO) {
            fill_json(
                &job.slot,
                &self.shared.error_response(
                    job.id,
                    job.name,
                    ErrorCode::ShuttingDown,
                    "router is shutting down".to_string(),
                    Some(50),
                ),
            );
        }
        if let Some(event) = self.event.take() {
            event.stop_and_join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }
}
