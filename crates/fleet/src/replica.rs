//! One fleet replica: the event-driven counterpart of
//! [`PlanServer`](galvatron_serve::PlanServer).
//!
//! A replica serves the same JSONL protocol as the single daemon and gives
//! the same answers — the stable-bytes contract is shared via
//! [`WireResult`] — but its connection layer is the [`event`](crate::event)
//! sweep loop instead of a thread per client, so one replica comfortably
//! fronts thousands of mostly-idle connections. Request admission is
//! restructured around that: where the daemon's connection thread *blocks*
//! on a single-flight, the replica records a **waiter** (`ResponseSlot` +
//! envelope fields) per request and the worker that finishes the
//! computation fills every waiter's slot; coalescing falls out of the
//! waiter list — the first waiter for a key enqueues the job, later ones
//! just append.
//!
//! On top of serving, a replica participates in the fleet's cache fabric:
//!
//! * **Gossip** — each freshly computed stable answer is pushed
//!   (best-effort, off the worker's critical path) to the key's ring
//!   successors, which are exactly the replicas the keyspace would fail
//!   over to, so a replica death mostly hits warm caches.
//! * **Warm-join** — [`ReplicaHandle::warm_join`] pulls a peer's hottest
//!   cache entries (`SnapshotPull`) before taking traffic, replacing cold
//!   DP runs with imports.

use crate::event::{spawn_event_loop, EventLoopConfig, EventLoopHandle, LineHandler, ResponseSlot};
use crate::ring::{plan_key_hash, HashRing};
use galvatron_obs::trace::{
    link_fields, PHASE_CACHE_LOOKUP, PHASE_DP_COMPUTE, PHASE_FLIGHT_WAIT, PHASE_QUEUE_WAIT,
    PHASE_SERIALIZE,
};
use galvatron_obs::{
    AttributionRecord, Obs, SlowRing, SlowTraceEntry, SpanLink, TraceContext, TraceScope,
};
use galvatron_planner::{PlanRequest, PlanService, PlannerConfig};
use galvatron_serve::{
    BoundedQueue, CacheEntry, ErrorCode, PlanBody, PlanClient, PlanKey, PushError, RequestBody,
    ResponseCache, ServeError, ServeStats, WireRequest, WireResponse, WireResult, WireTraceContext,
    PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TICK: Duration = Duration::from_millis(100);
const RETRY_AFTER_MS: u64 = 50;
/// K-slowest traced requests kept for `/trace/slow`.
const SLOW_RING_CAPACITY: usize = 32;

/// Replica configuration.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This replica's fleet-wide id (its position on the hash ring).
    pub id: usize,
    /// Bind address; `127.0.0.1:0` picks a free loopback port.
    pub addr: String,
    /// Worker threads computing plans (minimum 1).
    pub workers: usize,
    /// Bounded queue capacity; leaders beyond it are shed.
    pub queue_capacity: usize,
    /// Response-cache byte budget.
    pub cache_max_bytes: u64,
    /// The planner served.
    pub planner: PlannerConfig,
    /// How many ring successors each freshly computed answer is gossiped
    /// to. 0 disables gossip.
    pub gossip_fanout: usize,
    /// Hard cap on concurrently open connections.
    pub max_connections: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            id: 0,
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_capacity: 64,
            cache_max_bytes: 16 << 20,
            planner: PlannerConfig::default(),
            gossip_fanout: 1,
            max_connections: 16_384,
        }
    }
}

/// Per-waiter trace state: everything needed to attribute the waiter's
/// latency once the flight it parked on resolves.
struct WaiterTrace {
    /// The client's trace position (the parent of this replica's
    /// `serve_request` span).
    client: TraceContext,
    /// This replica's `serve_request` context for the waiter.
    server: TraceContext,
    /// Whether the client opted in to an [`AttributionRecord`] on the
    /// response envelope.
    want_attribution: bool,
    /// When the request line was admitted.
    arrival: Instant,
    /// `arrival` on the obs epoch clock (span-record time base).
    arrival_epoch: f64,
    /// Wall seconds the response-cache probe took.
    cache_lookup_seconds: f64,
}

/// One request waiting for a computation to finish.
struct Waiter {
    id: u64,
    name: String,
    coalesced: bool,
    slot: ResponseSlot,
    trace: Option<WaiterTrace>,
}

/// One queued computation.
struct Job {
    key: PlanKey,
    body: PlanBody,
    name: String,
    /// The leader's `serve_request` context; the worker's `dp_compute`
    /// span parents under it.
    trace: Option<TraceContext>,
    enqueued: Instant,
}

/// Timing of the computation that resolved a flight, shared by every
/// waiter registered on the key.
#[derive(Default)]
struct FlightTiming {
    queue_wait_seconds: f64,
    compute_seconds: f64,
    compute_span_id: Option<String>,
}

/// Fleet membership as this replica sees it.
struct PeerTable {
    ring: HashRing,
    addrs: HashMap<usize, SocketAddr>,
}

/// A cache entry queued for gossip, with the trace context (if any) of
/// the request that computed it so the push is linked into its tree.
type GossipItem = (CacheEntry, Option<TraceContext>);

struct Shared {
    id: usize,
    instance: String,
    service: PlanService,
    cache: ResponseCache,
    waiters: Mutex<HashMap<PlanKey, Vec<Waiter>>>,
    queue: BoundedQueue<Job>,
    peers: Mutex<PeerTable>,
    gossip_tx: Mutex<Option<mpsc::Sender<GossipItem>>>,
    obs: Obs,
    slow: SlowRing,
    stop: AtomicBool,
    requests: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    computed: AtomicU64,
    gossip_sent: AtomicU64,
    gossip_accepted: AtomicU64,
    warm_join_imported: AtomicU64,
    /// Live-connection count, wired up from the event loop after spawn.
    connections: OnceLock<Arc<std::sync::atomic::AtomicUsize>>,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let cache = self.cache.stats();
        ServeStats {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            paused: self.queue.is_paused(),
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            coalesced: self.coalesced.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            computed: self.computed.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
        }
    }

    /// Same metric names (and `instance` label discipline) as the single
    /// daemon, so one Prometheus dashboard covers both, plus the
    /// fleet-only series (connections, gossip, warm-join).
    fn refresh_metrics(&self) {
        let registry = self.obs.registry();
        let labels = [("instance", self.instance.as_str())];
        let stats = self.stats();
        registry
            .gauge_with("serve_queue_depth", &labels)
            .set(stats.queue_depth as f64);
        registry
            .gauge_with("serve_cache_entries", &labels)
            .set(stats.cache_entries as f64);
        registry
            .gauge_with("serve_cache_bytes", &labels)
            .set(stats.cache_bytes as f64);
        if let Some(connections) = self.connections.get() {
            registry
                .gauge_with("fleet_connections", &labels)
                .set(connections.load(Ordering::SeqCst) as f64);
        }
        for (name, total) in [
            ("serve_requests_total", stats.requests),
            ("serve_coalesced_total", stats.coalesced),
            ("serve_shed_total", stats.shed),
            ("serve_computed_total", stats.computed),
            ("serve_cache_hits_total", stats.cache_hits),
            ("serve_cache_misses_total", stats.cache_misses),
            ("serve_cache_evictions_total", stats.cache_evictions),
            (
                "fleet_gossip_sent_total",
                self.gossip_sent.load(Ordering::SeqCst),
            ),
            (
                "serve_gossip_accepted_total",
                self.gossip_accepted.load(Ordering::SeqCst),
            ),
            (
                "fleet_warm_join_imported_total",
                self.warm_join_imported.load(Ordering::SeqCst),
            ),
        ] {
            let counter = registry.counter_with(name, &labels);
            counter.inc_by(total.saturating_sub(counter.get()));
        }
    }

    fn shutting_down(&self) -> WireResult {
        WireResult::Error(ServeError {
            code: ErrorCode::ShuttingDown,
            message: "replica is shutting down".to_string(),
            retry_after_ms: Some(RETRY_AFTER_MS),
        })
    }

    /// Fill every waiter registered for `key` with `result` and drop the
    /// entry. The waiter list is the replica's single-flight: exactly one
    /// resolver wins the `remove`. Traced waiters are attributed and
    /// their `serve_request` span trees recorded here.
    fn resolve_waiters(&self, key: &PlanKey, result: &WireResult, timing: Option<&FlightTiming>) {
        let waiters = self.waiters.lock().unwrap().remove(key);
        for waiter in waiters.into_iter().flatten() {
            let attribution = waiter.trace.as_ref().and_then(|trace| {
                let attr = self.attribute(trace, waiter.coalesced, timing, result);
                trace.want_attribution.then_some(attr)
            });
            fill(
                &waiter.slot,
                WireResponse {
                    id: waiter.id,
                    name: waiter.name,
                    cached: false,
                    coalesced: waiter.coalesced,
                    attribution,
                    result: result.clone(),
                },
            );
        }
    }

    /// Build the latency attribution for one traced waiter, record its
    /// phase histograms and `serve_request` span tree, and offer the tree
    /// to the slow ring. Phase semantics: leaders own the queue and
    /// compute slices; coalesced followers (and cache hits) spent their
    /// whole wait parked on someone else's flight, so the residual lands
    /// in `flight_wait`. Phases sum to `total_seconds` by construction
    /// (up to the negative-residual clamp).
    fn attribute(
        &self,
        trace: &WaiterTrace,
        coalesced: bool,
        timing: Option<&FlightTiming>,
        result: &WireResult,
    ) -> AttributionRecord {
        let mut attr = AttributionRecord::new(
            &trace.server.trace_id.to_hex(),
            &trace.server.span_id.to_hex(),
            &self.instance,
        );
        let (queue_wait, compute) = match timing {
            Some(t) if !coalesced => (t.queue_wait_seconds, t.compute_seconds),
            _ => (0.0, 0.0),
        };
        attr.compute_span_id = timing.and_then(|t| t.compute_span_id.clone());
        let serialize_started = Instant::now();
        let _ = serde_json::to_string(result);
        let serialize = serialize_started.elapsed().as_secs_f64();
        let total = trace.arrival.elapsed().as_secs_f64();
        let flight_wait = total - trace.cache_lookup_seconds - queue_wait - compute - serialize;
        attr.push_phase(PHASE_CACHE_LOOKUP, trace.cache_lookup_seconds);
        attr.push_phase(PHASE_QUEUE_WAIT, queue_wait);
        attr.push_phase(PHASE_FLIGHT_WAIT, flight_wait);
        attr.push_phase(PHASE_DP_COMPUTE, compute);
        attr.push_phase(PHASE_SERIALIZE, serialize);
        attr.total_seconds = total;
        let registry = self.obs.registry();
        for phase in &attr.phases {
            registry
                .wall_histogram_with(
                    "serve_phase_seconds",
                    &[
                        ("instance", self.instance.as_str()),
                        ("phase", phase.phase.as_str()),
                    ],
                )
                .observe(phase.seconds);
        }
        let spans = attr.to_spans(
            "serve_request",
            &trace.client.span_id.to_hex(),
            trace.arrival_epoch,
        );
        for span in &spans {
            self.obs.sink().record(span.clone());
        }
        self.slow.offer(SlowTraceEntry {
            trace_id: attr.trace_id.clone(),
            name: "serve_request".to_string(),
            instance: self.instance.clone(),
            total_seconds: attr.total_seconds,
            spans,
        });
        attr
    }

    /// Hand a freshly computed stable answer to the gossip thread
    /// (best-effort; never blocks the worker). The leader's trace context
    /// rides along so the push shows up in the request's span tree.
    fn offer_gossip(&self, key: &PlanKey, result: &WireResult, trace: Option<TraceContext>) {
        if let Some(tx) = self.gossip_tx.lock().unwrap().as_ref() {
            let _ = tx.send((
                CacheEntry {
                    key: key.clone(),
                    result: result.clone(),
                },
                trace,
            ));
        }
    }
}

fn fill(slot: &ResponseSlot, response: WireResponse) {
    match serde_json::to_string(&response) {
        Ok(line) => slot.fill(line),
        // Unserializable responses cannot happen for our own types; emit
        // a hand-built error rather than leaving the slot hanging.
        Err(_) => slot.fill(
            "{\"id\":0,\"name\":\"\",\"result\":{\"Error\":{\"code\":\"PlannerError\",\
             \"message\":\"response serialization failed\",\"retry_after_ms\":null}}}"
                .to_string(),
        ),
    }
}

struct ReplicaHandler {
    shared: Arc<Shared>,
}

impl LineHandler for ReplicaHandler {
    fn on_line(&self, line: &str, slot: ResponseSlot) {
        let shared = &self.shared;
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let request: WireRequest = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => {
                fill(
                    &slot,
                    WireResponse {
                        id: 0,
                        name: String::new(),
                        cached: false,
                        coalesced: false,
                        attribution: None,
                        result: WireResult::Error(ServeError {
                            code: ErrorCode::BadRequest,
                            message: format!("unparseable request line: {e}"),
                            retry_after_ms: None,
                        }),
                    },
                );
                return;
            }
        };
        let (id, name) = (request.id, request.name.clone());
        // Malformed hex degrades to an untraced request rather than an
        // error: tracing must never break serving.
        let trace = request
            .trace
            .as_ref()
            .and_then(|wire| wire.context().map(|ctx| (ctx, wire.attribution)));
        let inline = |result: WireResult, cached: bool| {
            fill(
                &slot,
                WireResponse {
                    id,
                    name: name.clone(),
                    cached,
                    coalesced: false,
                    attribution: None,
                    result,
                },
            );
        };
        match request.body {
            RequestBody::Ping => inline(WireResult::Pong(PROTOCOL_VERSION), false),
            RequestBody::Stats => inline(WireResult::Stats(shared.stats()), false),
            RequestBody::Metrics => {
                shared.refresh_metrics();
                inline(
                    WireResult::Metrics(shared.obs.registry().snapshot().to_prometheus()),
                    false,
                );
            }
            RequestBody::MetricsPull => {
                shared.refresh_metrics();
                inline(
                    WireResult::MetricsState(shared.obs.registry().snapshot()),
                    false,
                );
            }
            RequestBody::SlowTracePull => {
                inline(WireResult::SlowTraces(shared.slow.drain()), false)
            }
            RequestBody::SnapshotPull { max_entries } => {
                let serve_started = Instant::now();
                let serve_epoch = shared.obs.now_seconds();
                let entries: Vec<CacheEntry> = shared
                    .cache
                    .export_recent(max_entries)
                    .into_iter()
                    .map(|(key, result)| CacheEntry { key, result })
                    .collect();
                // A traced pull (warm-join) gets a `snapshot_serve` span
                // parented under the puller's `snapshot_pull` context, so
                // cache warming shows up in the joiner's trace tree.
                if let Some((ctx, _)) = trace {
                    let child = ctx.child("snapshot_serve", 0);
                    let mut fields = link_fields(&SpanLink {
                        trace_id: ctx.trace_id,
                        span_id: child.span_id,
                        parent_span_id: ctx.span_id,
                    });
                    fields.push(("instance".to_string(), shared.instance.clone().into()));
                    fields.push(("entries".to_string(), (entries.len() as u64).into()));
                    shared.obs.record_span(
                        "snapshot_serve",
                        serve_epoch,
                        serve_started.elapsed().as_secs_f64(),
                        fields,
                    );
                }
                inline(WireResult::Snapshot(entries), false);
            }
            RequestBody::GossipPush { entries } => {
                let receive_started = Instant::now();
                let receive_epoch = shared.obs.now_seconds();
                let accepted = shared.cache.import(
                    entries
                        .into_iter()
                        .map(|entry| (entry.key, entry.result))
                        .collect(),
                );
                shared
                    .gossip_accepted
                    .fetch_add(accepted as u64, Ordering::SeqCst);
                // A traced push gets a `gossip_receive` span parented
                // under the sender's `gossip_push` context, so the warm
                // fan-out shows up in the originating request's tree.
                if let Some((ctx, _)) = trace {
                    let child = ctx.child("gossip_receive", 0);
                    let mut fields = link_fields(&SpanLink {
                        trace_id: ctx.trace_id,
                        span_id: child.span_id,
                        parent_span_id: ctx.span_id,
                    });
                    fields.push(("instance".to_string(), shared.instance.clone().into()));
                    fields.push(("accepted".to_string(), (accepted as u64).into()));
                    shared.obs.record_span(
                        "gossip_receive",
                        receive_epoch,
                        receive_started.elapsed().as_secs_f64(),
                        fields,
                    );
                }
                inline(WireResult::Ack(accepted as u64), false);
            }
            RequestBody::FleetCheck(_) => inline(
                WireResult::Error(ServeError {
                    code: ErrorCode::BadRequest,
                    message: "FleetCheck requires a fleet router; this is a replica".to_string(),
                    retry_after_ms: None,
                }),
                false,
            ),
            RequestBody::Plan(body) => handle_plan(shared, body, id, name, trace, slot),
        }
    }

    fn on_http_get(&self, path: &str) -> (String, String, String) {
        let shared = &self.shared;
        match path {
            "/metrics" => {
                shared.refresh_metrics();
                (
                    "200 OK".to_string(),
                    "text/plain; version=0.0.4".to_string(),
                    shared.obs.registry().snapshot().to_prometheus(),
                )
            }
            "/healthz" | "/health" => {
                let (ring_members, peers_known, vnodes) = {
                    let peers = shared.peers.lock().unwrap();
                    (
                        peers.ring.len(),
                        peers.addrs.len(),
                        peers.ring.vnodes_per_member(),
                    )
                };
                let draining = shared.stop.load(Ordering::SeqCst);
                let status = if draining { "draining" } else { "ok" };
                let body = format!(
                    "{{\"status\":\"{status}\",\"instance\":\"{}\",\"ring_members\":{ring_members},\
                     \"peers\":{peers_known},\"vnodes\":{vnodes}}}\n",
                    shared.instance
                );
                let code = if draining {
                    "503 Service Unavailable"
                } else {
                    "200 OK"
                };
                (code.to_string(), "application/json".to_string(), body)
            }
            "/trace/slow" => {
                let entries = shared.slow.drain();
                let body = serde_json::to_string(&entries).unwrap_or_else(|_| "[]".to_string());
                (
                    "200 OK".to_string(),
                    "application/json".to_string(),
                    format!("{body}\n"),
                )
            }
            _ => (
                "404 Not Found".to_string(),
                "text/plain".to_string(),
                format!("unknown path {path}; try /metrics, /healthz or /trace/slow\n"),
            ),
        }
    }
}

/// The plan path: validate → cache → waiter list (coalesce or lead) →
/// queue (or shed). Never blocks — the event loop is calling.
fn handle_plan(
    shared: &Arc<Shared>,
    body: PlanBody,
    id: u64,
    name: String,
    trace: Option<(TraceContext, bool)>,
    slot: ResponseSlot,
) {
    let arrival = Instant::now();
    let arrival_epoch = shared.obs.now_seconds();
    let mut wtrace = trace.map(|(client, want_attribution)| WaiterTrace {
        client,
        server: client.child("serve_request", 0),
        want_attribution,
        arrival,
        arrival_epoch,
        cache_lookup_seconds: 0.0,
    });
    let error = |code: ErrorCode, message: String, retry: Option<u64>| {
        fill(
            &slot,
            WireResponse {
                id,
                name: name.clone(),
                cached: false,
                coalesced: false,
                attribution: None,
                result: WireResult::Error(ServeError {
                    code,
                    message,
                    retry_after_ms: retry,
                }),
            },
        );
    };
    if shared.stop.load(Ordering::SeqCst) {
        let result = shared.shutting_down();
        fill(
            &slot,
            WireResponse {
                id,
                name,
                cached: false,
                coalesced: false,
                attribution: None,
                result,
            },
        );
        return;
    }
    if let Err(e) = body.topology.validate() {
        error(
            ErrorCode::InvalidTopology,
            format!("invalid topology: {e}"),
            None,
        );
        return;
    }
    let Ok(model_json) = serde_json::to_string(&body.model) else {
        error(
            ErrorCode::BadRequest,
            "model does not serialize canonically".to_string(),
            None,
        );
        return;
    };
    let key = PlanKey {
        model_json,
        topology_fingerprint: body.topology.fingerprint(),
        budget_bytes: body.budget_bytes,
    };
    let lookup_started = Instant::now();
    let cached_result = shared.cache.get(&key);
    if let Some(t) = wtrace.as_mut() {
        t.cache_lookup_seconds = lookup_started.elapsed().as_secs_f64();
    }
    if let Some(result) = cached_result {
        let attribution = wtrace.as_ref().and_then(|t| {
            let attr = shared.attribute(t, false, None, &result);
            t.want_attribution.then_some(attr)
        });
        fill(
            &slot,
            WireResponse {
                id,
                name,
                cached: true,
                coalesced: false,
                attribution,
                result,
            },
        );
        return;
    }
    // The leader's serve_request context becomes the job's trace: the
    // worker's dp_compute span (and the planner spans under it) parent
    // there, while coalesced followers link in via `compute_span_id`.
    let job_trace = wtrace.as_ref().map(|t| t.server);
    // Single flight via the waiter table: the first waiter for a key is
    // the leader and enqueues; later arrivals coalesce by appending.
    let is_leader = {
        let mut waiters = shared.waiters.lock().unwrap();
        match waiters.get_mut(&key) {
            Some(list) => {
                shared.coalesced.fetch_add(1, Ordering::SeqCst);
                list.push(Waiter {
                    id,
                    name: name.clone(),
                    coalesced: true,
                    slot,
                    trace: wtrace,
                });
                false
            }
            None => {
                waiters.insert(
                    key.clone(),
                    vec![Waiter {
                        id,
                        name: name.clone(),
                        coalesced: false,
                        slot,
                        trace: wtrace,
                    }],
                );
                true
            }
        }
    };
    if !is_leader {
        return;
    }
    let job = Job {
        key: key.clone(),
        body,
        name,
        trace: job_trace,
        enqueued: Instant::now(),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.shed.fetch_add(1, Ordering::SeqCst);
            let result = WireResult::Error(ServeError {
                code: ErrorCode::Overloaded,
                message: format!("request queue full (capacity {})", shared.queue.capacity()),
                retry_after_ms: Some(RETRY_AFTER_MS),
            });
            // Sheds the leader and anyone who coalesced meanwhile.
            shared.resolve_waiters(&key, &result, None);
        }
        Err(PushError::Closed) => {
            let result = shared.shutting_down();
            shared.resolve_waiters(&key, &result, None);
        }
    }
}

/// A worker: pop, compute once, publish to cache + waiters + gossip.
/// Same drain semantics as the single daemon: jobs popped before stop
/// complete; jobs popped after answer `ShuttingDown`.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) && shared.queue.is_empty() {
            return;
        }
        let Some(job) = shared.queue.pop(TICK) else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        let queue_wait_seconds = job.enqueued.elapsed().as_secs_f64();
        if shared.stop.load(Ordering::SeqCst) {
            shared.resolve_waiters(&job.key, &shared.shutting_down(), None);
            continue;
        }
        let (result, timing) = match shared.cache.get(&job.key) {
            Some(result) => (
                result,
                FlightTiming {
                    queue_wait_seconds,
                    ..FlightTiming::default()
                },
            ),
            None => {
                // The dp_compute span parents under the leader's
                // serve_request context; the planner's own spans (opened
                // on this thread) parent under dp_compute in turn.
                let leader_scope = job.trace.map(TraceScope::enter);
                let compute_span = shared.obs.span("dp_compute");
                let compute_ctx = compute_span.trace_context();
                let compute_started = Instant::now();
                let (result, cacheable) = {
                    let _compute_scope = compute_ctx.map(TraceScope::enter);
                    compute(shared, &job)
                };
                let compute_seconds = compute_started.elapsed().as_secs_f64();
                compute_span.finish();
                drop(leader_scope);
                if cacheable {
                    shared.cache.insert(job.key.clone(), result.clone());
                    shared.offer_gossip(&job.key, &result, job.trace);
                }
                (
                    result,
                    FlightTiming {
                        queue_wait_seconds,
                        compute_seconds,
                        compute_span_id: compute_ctx.map(|c| c.span_id.to_hex()),
                    },
                )
            }
        };
        shared.resolve_waiters(&job.key, &result, Some(&timing));
        shared.refresh_metrics();
    }
}

fn compute(shared: &Arc<Shared>, job: &Job) -> (WireResult, bool) {
    shared.computed.fetch_add(1, Ordering::SeqCst);
    let request = PlanRequest {
        name: job.name.clone(),
        model: job.body.model.clone(),
        topology: job.body.topology.clone(),
        budget_bytes: job.body.budget_bytes,
    };
    match shared.service.submit(&request) {
        Ok(response) => match response.outcome {
            Some(outcome) => (WireResult::Plan(outcome.into()), true),
            None => (
                WireResult::Error(ServeError {
                    code: ErrorCode::Infeasible,
                    message: format!(
                        "no parallel configuration fits {} bytes per device",
                        job.body.budget_bytes
                    ),
                    retry_after_ms: None,
                }),
                true,
            ),
        },
        Err(e) => (
            WireResult::Error(ServeError {
                code: ErrorCode::PlannerError,
                message: format!("planner error: {e}"),
                retry_after_ms: None,
            }),
            false,
        ),
    }
}

/// Push gossiped entries to their ring successors. Runs on its own thread
/// with its own peer connections; any failure just drops that push —
/// gossip is an optimization, correctness never depends on it.
fn gossip_loop(
    shared: &Arc<Shared>,
    rx: mpsc::Receiver<(CacheEntry, Option<TraceContext>)>,
    fanout: usize,
) {
    let mut conns: HashMap<usize, PlanClient> = HashMap::new();
    for (entry, trace) in rx {
        let targets: Vec<(usize, SocketAddr)> = {
            let peers = shared.peers.lock().unwrap();
            peers
                .ring
                .successors(plan_key_hash(&entry.key), fanout + 1)
                .into_iter()
                .filter(|&id| id != shared.id)
                .take(fanout)
                .filter_map(|id| peers.addrs.get(&id).map(|&addr| (id, addr)))
                .collect()
        };
        for (push_index, (peer_id, addr)) in targets.into_iter().enumerate() {
            let mut pushed = false;
            // One retry on a fresh connection: the cached one may have
            // died with a peer restart.
            for _attempt in 0..2 {
                let client = match conns.entry(peer_id) {
                    std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        match PlanClient::connect(addr) {
                            Ok(client) => entry.insert(client),
                            Err(_) => break,
                        }
                    }
                };
                // Propagate the originating request's trace on the push:
                // the receiver's gossip_receive span parents under this
                // gossip_push context.
                let push_ctx = trace.map(|ctx| ctx.child("gossip_push", push_index as u64));
                if let Some(ctx) = push_ctx {
                    client.set_trace(WireTraceContext::from_context(ctx, false));
                }
                let push_started = Instant::now();
                let push_epoch = shared.obs.now_seconds();
                match client.gossip_push(vec![entry.clone()]) {
                    Ok(accepted) => {
                        // The ack closes the loop: record the push (with
                        // the receiver's accepted count) in the originating
                        // request's tree; the receiver's gossip_receive
                        // parents under this span.
                        if let (Some(ctx), Some(push_ctx)) = (trace, push_ctx) {
                            let mut fields = link_fields(&SpanLink {
                                trace_id: push_ctx.trace_id,
                                span_id: push_ctx.span_id,
                                parent_span_id: ctx.span_id,
                            });
                            fields.push(("instance".to_string(), shared.instance.clone().into()));
                            fields.push(("peer".to_string(), (peer_id as u64).into()));
                            fields.push(("accepted".to_string(), accepted.into()));
                            shared.obs.record_span(
                                "gossip_push",
                                push_epoch,
                                push_started.elapsed().as_secs_f64(),
                                fields,
                            );
                        }
                        pushed = true;
                        break;
                    }
                    Err(_) => {
                        conns.remove(&peer_id);
                    }
                }
            }
            if pushed {
                shared.gossip_sent.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// The replica constructor. [`start`](FleetReplica::start) it, then
/// [`set_peers`](ReplicaHandle::set_peers) once the fleet's addresses are
/// known (port 0 means addresses exist only after every bind).
pub struct FleetReplica;

/// Handle to a running replica.
pub struct ReplicaHandle {
    shared: Arc<Shared>,
    event: Option<EventLoopHandle>,
    workers: Vec<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl FleetReplica {
    /// Bind and start the event loop, worker pool and gossip thread.
    pub fn start(config: ReplicaConfig, obs: Obs) -> std::io::Result<ReplicaHandle> {
        let shared = Arc::new(Shared {
            id: config.id,
            instance: format!("replica-{}", config.id),
            service: PlanService::new(config.planner.clone()).with_obs(obs.clone()),
            cache: ResponseCache::new(config.cache_max_bytes),
            waiters: Mutex::new(HashMap::new()),
            queue: BoundedQueue::new(config.queue_capacity),
            peers: Mutex::new(PeerTable {
                ring: HashRing::with_members(&[config.id]),
                addrs: HashMap::new(),
            }),
            gossip_tx: Mutex::new(None),
            obs,
            slow: SlowRing::new(SLOW_RING_CAPACITY),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            gossip_sent: AtomicU64::new(0),
            gossip_accepted: AtomicU64::new(0),
            warm_join_imported: AtomicU64::new(0),
            connections: OnceLock::new(),
        });
        let event = spawn_event_loop(
            &config.addr,
            Arc::new(ReplicaHandler {
                shared: Arc::clone(&shared),
            }),
            EventLoopConfig {
                max_connections: config.max_connections,
            },
        )?;
        let _ = shared.connections.set(event.connections_shared());
        let addr = event.addr();
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let gossip = if config.gossip_fanout > 0 {
            let (tx, rx) = mpsc::channel();
            *shared.gossip_tx.lock().unwrap() = Some(tx);
            let shared = Arc::clone(&shared);
            let fanout = config.gossip_fanout;
            Some(std::thread::spawn(move || gossip_loop(&shared, rx, fanout)))
        } else {
            None
        };
        Ok(ReplicaHandle {
            shared,
            event: Some(event),
            workers,
            gossip,
            addr,
        })
    }
}

impl ReplicaHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This replica's fleet id.
    pub fn id(&self) -> usize {
        self.shared.id
    }

    /// The `instance` metric label (`replica-<id>`).
    pub fn instance(&self) -> String {
        self.shared.instance.clone()
    }

    /// Currently open connections on the event loop.
    pub fn connections(&self) -> usize {
        self.event.as_ref().map_or(0, |e| e.connections())
    }

    /// Point-in-time serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Gossip pushes successfully delivered to peers.
    pub fn gossip_sent(&self) -> u64 {
        self.shared.gossip_sent.load(Ordering::SeqCst)
    }

    /// Install the fleet membership: every `(id, addr)` including or
    /// excluding this replica (it is always on its own ring). Gossip
    /// targets and ring ownership update immediately.
    pub fn set_peers(&self, members: &[(usize, SocketAddr)]) {
        let mut peers = self.shared.peers.lock().unwrap();
        let mut ids: Vec<usize> = members.iter().map(|&(id, _)| id).collect();
        ids.push(self.shared.id);
        peers.ring = HashRing::with_members(&ids);
        peers.addrs = members
            .iter()
            .filter(|&&(id, _)| id != self.shared.id)
            .copied()
            .collect();
    }

    /// Warm-join: pull up to `max_entries` hot cache entries from `peer`
    /// and import them, so this replica answers from cache instead of
    /// running cold DP for questions the fleet has already answered.
    /// Returns how many entries were imported.
    pub fn warm_join(&self, peer: SocketAddr, max_entries: usize) -> std::io::Result<usize> {
        self.warm_join_traced(peer, max_entries, None)
    }

    /// [`warm_join`](Self::warm_join) carrying a trace context: the pull is
    /// sent with a `snapshot_pull` child context (the peer's
    /// `snapshot_serve` span parents under it) and the import is recorded
    /// as a `snapshot_pull` span in the caller's tree with the imported
    /// count.
    pub fn warm_join_traced(
        &self,
        peer: SocketAddr,
        max_entries: usize,
        trace: Option<TraceContext>,
    ) -> std::io::Result<usize> {
        let mut client = PlanClient::connect(peer)?;
        let pull_ctx = trace.map(|ctx| ctx.child("snapshot_pull", 0));
        if let Some(ctx) = pull_ctx {
            client.set_trace(WireTraceContext::from_context(ctx, false));
        }
        let pull_started = Instant::now();
        let pull_epoch = self.shared.obs.now_seconds();
        let entries = client.snapshot_pull(max_entries)?;
        let imported = self.shared.cache.import(
            entries
                .into_iter()
                .map(|entry| (entry.key, entry.result))
                .collect(),
        );
        if let (Some(ctx), Some(pull_ctx)) = (trace, pull_ctx) {
            let mut fields = link_fields(&SpanLink {
                trace_id: pull_ctx.trace_id,
                span_id: pull_ctx.span_id,
                parent_span_id: ctx.span_id,
            });
            fields.push(("instance".to_string(), self.shared.instance.clone().into()));
            fields.push(("imported".to_string(), (imported as u64).into()));
            self.shared.obs.record_span(
                "snapshot_pull",
                pull_epoch,
                pull_started.elapsed().as_secs_f64(),
                fields,
            );
        }
        self.shared
            .warm_join_imported
            .fetch_add(imported as u64, Ordering::SeqCst);
        self.shared.refresh_metrics();
        Ok(imported)
    }

    /// Graceful drain, same contract as the single daemon: stop admitting,
    /// finish in-flight computations, answer queued jobs and their waiters
    /// with `ShuttingDown`, flush every connection, join every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Belt and braces: resolve any straggler jobs and waiters so no
        // slot is left unfilled when the event loop drains.
        while let Some(job) = self.shared.queue.pop(Duration::ZERO) {
            self.shared
                .resolve_waiters(&job.key, &self.shared.shutting_down(), None);
        }
        let keys: Vec<PlanKey> = self
            .shared
            .waiters
            .lock()
            .unwrap()
            .keys()
            .cloned()
            .collect();
        for key in keys {
            self.shared
                .resolve_waiters(&key, &self.shared.shutting_down(), None);
        }
        *self.shared.gossip_tx.lock().unwrap() = None; // ends the gossip loop
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
        if let Some(event) = self.event.take() {
            event.stop_and_join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }
}
