//! Event-driven connection layer on pure `std`.
//!
//! The single-daemon server (`galvatron-serve`) spends one thread per
//! connection; a fleet replica fronting thousands of mostly-idle clients
//! cannot. This module multiplexes every connection onto **one** sweep
//! thread using non-blocking sockets: each pass accepts whatever is
//! pending, reads every readable socket until `WouldBlock`, parses
//! complete JSON lines, and flushes whatever responses are ready — then
//! sleeps ~1ms only when an entire pass made no progress. There is no
//! `epoll`/`kqueue` (nothing beyond `std` is available), so readiness is
//! discovered by polling; with the short idle sleep this costs a few
//! thousand syscalls per second while idle and adds at most ~1ms latency,
//! which is noise next to a DP solve.
//!
//! Request handling is decoupled from the loop through [`ResponseSlot`]: the
//! loop hands each parsed line to a [`LineHandler`] together with a slot,
//! the handler fills the slot now (inline answers) or later from a worker
//! thread (planning), and the loop writes slots back **in arrival order**
//! per connection — the JSONL protocol promises in-order responses, so a
//! filled slot waits behind its connection's earlier unfilled ones.
//!
//! A connection whose first line starts with `GET ` is treated as a
//! one-shot HTTP scrape (`/metrics`, `/healthz`), answered from
//! [`LineHandler::on_http_get`] and closed after the flush — the same
//! dual-protocol trick the single daemon plays, minus the thread.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reject lines longer than this (a plan request with a large model JSON
/// is ~100 KiB; 32 MiB is a defensive ceiling, not a tuning knob).
const MAX_LINE_BYTES: usize = 32 << 20;

/// Sleep between sweeps that made no progress.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// How long `stop` waits for in-flight responses to flush before closing
/// connections anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// A one-response mailbox connecting a worker thread back to the event
/// loop. The handler clones it freely; the first `fill` wins.
#[derive(Clone)]
pub struct ResponseSlot {
    cell: Arc<Mutex<Option<String>>>,
}

impl ResponseSlot {
    /// An empty slot.
    pub fn new() -> Self {
        ResponseSlot {
            cell: Arc::new(Mutex::new(None)),
        }
    }

    /// Deposit the response line (no trailing newline). Later fills of an
    /// already-filled slot are ignored — the first answer stands.
    pub fn fill(&self, line: String) {
        let mut cell = self.cell.lock().unwrap();
        if cell.is_none() {
            *cell = Some(line);
        }
    }

    /// Whether a response has been deposited.
    pub fn is_filled(&self) -> bool {
        self.cell.lock().unwrap().is_some()
    }

    fn take(&self) -> Option<String> {
        self.cell.lock().unwrap().take()
    }
}

impl Default for ResponseSlot {
    fn default() -> Self {
        ResponseSlot::new()
    }
}

/// What the event loop calls with each complete request line and each
/// HTTP scrape. Implementations must not block the calling thread — hand
/// slow work (planning) to a worker pool and fill the slot from there.
pub trait LineHandler: Send + Sync + 'static {
    /// Handle one JSONL request line. Fill `slot` now or later; the loop
    /// flushes it in arrival order once filled.
    fn on_line(&self, line: &str, slot: ResponseSlot);

    /// Answer a one-shot HTTP GET for `path`. Returns
    /// `(status line, content type, body)`.
    fn on_http_get(&self, path: &str) -> (String, String, String);
}

/// Tunables for [`spawn_event_loop`].
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Hard cap on concurrently open connections; accepts beyond it are
    /// closed immediately.
    pub max_connections: usize,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            max_connections: 16_384,
        }
    }
}

/// Handle to a running event loop.
pub struct EventLoopHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    accepted: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl EventLoopHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently open connections.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Connections accepted over the loop's lifetime.
    pub fn accepted_total(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Shared live-connection counter, for embedding in a metrics gauge.
    pub(crate) fn connections_shared(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.connections)
    }

    /// Stop accepting, flush pending responses (bounded by an internal
    /// deadline), close every connection and join the thread. Call only
    /// after the handler's workers have filled every outstanding slot —
    /// unfilled slots at the deadline are dropped with their connections.
    pub fn stop_and_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for EventLoopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Bind `addr` and start the sweep thread.
pub fn spawn_event_loop(
    addr: &str,
    handler: Arc<dyn LineHandler>,
    config: EventLoopConfig,
) -> std::io::Result<EventLoopHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(AtomicUsize::new(0));
    let accepted = Arc::new(AtomicU64::new(0));
    let thread = {
        let stop = Arc::clone(&stop);
        let connections = Arc::clone(&connections);
        let accepted = Arc::clone(&accepted);
        std::thread::Builder::new()
            .name("fleet-event-loop".to_string())
            .spawn(move || {
                let mut state = LoopState {
                    listener,
                    handler,
                    config,
                    conns: Vec::new(),
                    stop,
                    connections,
                    accepted,
                };
                state.run();
            })?
    };
    Ok(EventLoopHandle {
        addr,
        stop,
        connections,
        accepted,
        thread: Some(thread),
    })
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    /// Bytes queued for writing; `out_pos` marks how much already went out.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Slots for parsed-but-unanswered lines, in arrival order.
    pending: VecDeque<ResponseSlot>,
    read_closed: bool,
    /// Set for HTTP scrapes: close once the outbuf drains.
    close_after_flush: bool,
    /// Lines handled so far (the HTTP sniff applies only to a connection's
    /// first bytes).
    served_lines: u64,
    dead: bool,
}

struct LoopState {
    listener: TcpListener,
    handler: Arc<dyn LineHandler>,
    config: EventLoopConfig,
    conns: Vec<Conn>,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    accepted: Arc<AtomicU64>,
}

impl LoopState {
    fn run(&mut self) {
        let mut drain_started: Option<Instant> = None;
        loop {
            let stopping = self.stop.load(Ordering::SeqCst);
            let mut progress = false;
            if !stopping {
                progress |= self.accept_pending();
            }
            progress |= self.sweep_connections(stopping);
            self.reap(stopping);
            self.connections.store(self.conns.len(), Ordering::SeqCst);
            if stopping {
                let started = *drain_started.get_or_insert_with(Instant::now);
                let drained = self
                    .conns
                    .iter()
                    .all(|c| c.pending.is_empty() && c.outbuf.len() == c.out_pos);
                if drained || started.elapsed() >= DRAIN_DEADLINE {
                    self.conns.clear();
                    self.connections.store(0, Ordering::SeqCst);
                    return;
                }
            }
            if !progress {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }

    fn accept_pending(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    self.accepted.fetch_add(1, Ordering::SeqCst);
                    if self.conns.len() >= self.config.max_connections {
                        drop(stream); // over the cap: refuse by closing
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.conns.push(Conn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        out_pos: 0,
                        pending: VecDeque::new(),
                        read_closed: false,
                        close_after_flush: false,
                        served_lines: 0,
                        dead: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        progress
    }

    fn sweep_connections(&mut self, stopping: bool) -> bool {
        let mut progress = false;
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            if conn.dead {
                continue;
            }
            progress |= read_available(conn);
            // During drain no new work is started; half-received lines
            // will never complete and are abandoned with the connection.
            if !stopping {
                progress |= parse_lines(conn, self.handler.as_ref());
            }
            progress |= promote_ready(conn);
            progress |= flush(conn);
        }
        progress
    }

    /// Drop connections that are finished or broken. During drain, any
    /// connection with nothing left to say is closed immediately.
    fn reap(&mut self, stopping: bool) {
        self.conns.retain(|conn| {
            if conn.dead {
                return false;
            }
            let flushed = conn.outbuf.len() == conn.out_pos;
            let idle = conn.pending.is_empty() && flushed;
            if conn.close_after_flush && idle {
                return false;
            }
            if conn.read_closed && idle {
                return false;
            }
            if stopping && idle {
                return false;
            }
            true
        });
    }
}

fn read_available(conn: &mut Conn) -> bool {
    if conn.read_closed {
        return false;
    }
    let mut progress = false;
    let mut chunk = [0u8; 8192];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                progress = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                progress = true;
                if conn.inbuf.len() > MAX_LINE_BYTES {
                    conn.dead = true;
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progress
}

fn parse_lines(conn: &mut Conn, handler: &dyn LineHandler) -> bool {
    let mut progress = false;
    while let Some(newline) = conn.inbuf.iter().position(|&b| b == b'\n') {
        let line_bytes: Vec<u8> = conn.inbuf.drain(..=newline).collect();
        let line = String::from_utf8_lossy(&line_bytes);
        let line = line.trim_end_matches(['\n', '\r']);
        progress = true;
        if line.is_empty() {
            continue;
        }
        if conn.served_lines == 0 && conn.pending.is_empty() {
            if let Some(rest) = line.strip_prefix("GET ") {
                let path = rest.split_whitespace().next().unwrap_or("/");
                let (status, content_type, body) = handler.on_http_get(path);
                conn.outbuf.extend_from_slice(
                    format!(
                        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    )
                    .as_bytes(),
                );
                conn.outbuf.extend_from_slice(body.as_bytes());
                conn.close_after_flush = true;
                conn.inbuf.clear(); // remaining HTTP headers are irrelevant
                return true;
            }
        }
        let slot = ResponseSlot::new();
        handler.on_line(line, slot.clone());
        conn.pending.push_back(slot);
        conn.served_lines += 1;
    }
    progress
}

/// Move filled slots (respecting arrival order) into the write buffer.
fn promote_ready(conn: &mut Conn) -> bool {
    let mut progress = false;
    while let Some(front) = conn.pending.front() {
        match front.take() {
            Some(line) => {
                conn.outbuf.extend_from_slice(line.as_bytes());
                conn.outbuf.push(b'\n');
                conn.pending.pop_front();
                progress = true;
            }
            None => break,
        }
    }
    progress
}

fn flush(conn: &mut Conn) -> bool {
    let mut progress = false;
    while conn.out_pos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.out_pos == conn.outbuf.len() && conn.out_pos > 0 {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    struct Echo;
    impl LineHandler for Echo {
        fn on_line(&self, line: &str, slot: ResponseSlot) {
            slot.fill(format!("echo:{line}"));
        }
        fn on_http_get(&self, path: &str) -> (String, String, String) {
            (
                "200 OK".to_string(),
                "text/plain".to_string(),
                format!("path={path}\n"),
            )
        }
    }

    /// Fills even-numbered lines immediately and odd-numbered ones only
    /// when `release` flips — exercises in-order flushing.
    struct Staggered {
        release: Arc<AtomicBool>,
        held: Mutex<Vec<(String, ResponseSlot)>>,
    }
    impl LineHandler for Staggered {
        fn on_line(&self, line: &str, slot: ResponseSlot) {
            let n: u64 = line.parse().unwrap();
            if n.is_multiple_of(2) {
                slot.fill(format!("even:{n}"));
            } else if self.release.load(Ordering::SeqCst) {
                slot.fill(format!("odd:{n}"));
            } else {
                self.held.lock().unwrap().push((line.to_string(), slot));
            }
        }
        fn on_http_get(&self, _path: &str) -> (String, String, String) {
            (
                "404 Not Found".to_string(),
                "text/plain".to_string(),
                String::new(),
            )
        }
    }

    #[test]
    fn echoes_lines_and_handles_pipelining() {
        let handle =
            spawn_event_loop("127.0.0.1:0", Arc::new(Echo), EventLoopConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Two requests in one write (pipelined), plus a partial third
        // completed by a second write.
        stream.write_all(b"one\ntwo\nthr").unwrap();
        stream.write_all(b"ee\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for expect in ["echo:one", "echo:two", "echo:three"] {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), expect);
        }
        handle.stop_and_join();
    }

    #[test]
    fn responses_flush_in_arrival_order() {
        let release = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(Staggered {
            release: Arc::clone(&release),
            held: Mutex::new(Vec::new()),
        });
        let handle = spawn_event_loop(
            "127.0.0.1:0",
            Arc::clone(&handler) as Arc<dyn LineHandler>,
            EventLoopConfig::default(),
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"1\n2\n3\n4\n").unwrap();
        // Wait until the loop parsed everything: 2 and 4 are filled, 1 and
        // 3 held. Nothing may be delivered yet — 1 blocks the queue.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handler.held.lock().unwrap().len() < 2 {
            assert!(Instant::now() < deadline, "handler never saw held lines");
            std::thread::sleep(Duration::from_millis(1));
        }
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut probe = [0u8; 1];
        match stream.read(&mut probe) {
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            other => panic!("expected no bytes before slot 1 fills, got {other:?}"),
        }
        // Release the held slots; all four responses arrive in order.
        release.store(true, Ordering::SeqCst);
        for (line, slot) in handler.held.lock().unwrap().drain(..) {
            slot.fill(format!("odd:{line}"));
        }
        stream.set_read_timeout(None).unwrap();
        let mut reader = BufReader::new(stream);
        for expect in ["odd:1", "even:2", "odd:3", "even:4"] {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), expect);
        }
        handle.stop_and_join();
    }

    #[test]
    fn http_get_is_answered_and_closed() {
        let handle =
            spawn_event_loop("127.0.0.1:0", Arc::new(Echo), EventLoopConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap(); // server closes
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.ends_with("path=/healthz\n"), "{response}");
        handle.stop_and_join();
    }

    #[test]
    fn holds_many_idle_connections_without_threads() {
        let handle =
            spawn_event_loop("127.0.0.1:0", Arc::new(Echo), EventLoopConfig::default()).unwrap();
        let mut streams = Vec::new();
        for _ in 0..256 {
            streams.push(TcpStream::connect(handle.addr()).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while handle.connections() < 256 {
            assert!(Instant::now() < deadline, "loop never accepted all conns");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Every connection still answers.
        let (first, last) = (&mut streams[0], 255);
        first.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(first.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:hello");
        let last = &mut streams[last];
        last.write_all(b"world\n").unwrap();
        let mut reader = BufReader::new(last.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:world");
        handle.stop_and_join();
    }

    #[test]
    fn connection_cap_refuses_extras_but_keeps_serving() {
        let handle = spawn_event_loop(
            "127.0.0.1:0",
            Arc::new(Echo),
            EventLoopConfig { max_connections: 4 },
        )
        .unwrap();
        let mut keep: Vec<TcpStream> = (0..4)
            .map(|_| TcpStream::connect(handle.addr()).unwrap())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.connections() < 4 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        // The fifth is accepted then closed; reading yields EOF.
        let mut extra = TcpStream::connect(handle.addr()).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(extra.read(&mut buf).unwrap_or(0), 0);
        // Existing connections are unaffected.
        keep[0].write_all(b"still-here\n").unwrap();
        let mut reader = BufReader::new(keep[0].try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:still-here");
        handle.stop_and_join();
    }
}
