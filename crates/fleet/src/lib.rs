//! `galvatron-fleet`: sharded, replicated plan serving.
//!
//! One plan-serving daemon ([`galvatron-serve`](galvatron_serve)) answers
//! from a single response cache with a thread per connection. This crate
//! scales that out to an N-replica **fleet** while keeping the wire
//! protocol, the answers and their exact bytes unchanged:
//!
//! * [`event`] — an event-driven connection layer on pure `std`
//!   (non-blocking sockets, one sweep thread), so a replica holds
//!   thousands of idle connections without a thread each.
//! * [`ring`] — a consistent-hash ring over the response-cache key
//!   `(model JSON, topology fingerprint, budget)` with FNV-1a hashing,
//!   deterministic across processes; adding a replica to an N-replica
//!   ring remaps ~1/(N+1) of the keyspace.
//! * [`replica`] — the event-driven serving replica: waiter-table
//!   single-flight, bounded-queue workers, and the peer protocol
//!   (gossip push of fresh answers to ring successors, snapshot export
//!   for joiners).
//! * [`router`] — the front-end that owns no cache: it relays raw request
//!   and response lines between clients and key owners, marks replicas
//!   dead on forward failure and retries along the ring, and answers
//!   `FleetCheck` by asking every replica and comparing answer bytes.
//!
//! The division of labor with `galvatron-serve` is deliberate: serve owns
//! the protocol, cache and stable-bytes contract; fleet owns placement,
//! replication and connection scaling. A fleet of one replica behaves
//! exactly like the daemon, byte for byte.
//!
//! ```no_run
//! use galvatron_fleet::{FleetReplica, FleetRouter, ReplicaConfig, RouterConfig};
//! use galvatron_obs::Obs;
//! use galvatron_serve::PlanClient;
//!
//! let replica = FleetReplica::start(ReplicaConfig::default(), Obs::noop()).unwrap();
//! let router = FleetRouter::start(
//!     RouterConfig {
//!         replicas: vec![(replica.id(), replica.addr())],
//!         ..RouterConfig::default()
//!     },
//!     Obs::noop(),
//! )
//! .unwrap();
//! let mut client = PlanClient::connect(router.addr()).unwrap();
//! assert_eq!(client.ping().unwrap(), galvatron_serve::PROTOCOL_VERSION);
//! router.shutdown();
//! replica.shutdown();
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod replica;
pub mod ring;
pub mod router;

pub use event::{spawn_event_loop, EventLoopConfig, EventLoopHandle, LineHandler, ResponseSlot};
pub use replica::{FleetReplica, ReplicaConfig, ReplicaHandle};
pub use ring::{plan_key_hash, stable_hash, HashRing, DEFAULT_VNODES};
pub use router::{FleetRouter, RouterConfig, RouterHandle};
