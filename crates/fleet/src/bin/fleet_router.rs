//! `galvatron-fleet-router` — run an N-replica plan-serving fleet behind
//! one consistent-hash router, in one process.
//!
//! ```text
//! galvatron-fleet-router [--replicas N] [--addr HOST:PORT] [--workers W]
//!                        [--queue-capacity Q] [--gossip-fanout G]
//!                        [--max-batch B] [--jobs J]
//! ```
//!
//! Machine-readable stdout (for scripts that bind port 0): the first line
//! is the router address, then one `replica <id> <addr>` line per replica.
//! Narration goes to stderr. Commands on stdin:
//!
//! * `kill <id>` — gracefully drain one replica (the router fails over on
//!   the next request that needed it).
//! * `join` — start a fresh replica that warm-joins from the
//!   lowest-numbered live replica's cache snapshot, then enters the ring;
//!   prints its `replica <id> <addr>` line on stdout.
//! * `quit` (or stdin EOF) — drain everything and exit.
//!
//! So `echo quit | galvatron-fleet-router --replicas 3` is a complete
//! smoke test of fleet bring-up and graceful drain.

use galvatron_core::OptimizerConfig;
use galvatron_fleet::{FleetReplica, FleetRouter, ReplicaConfig, ReplicaHandle, RouterConfig};
use galvatron_obs::{MetricsRegistry, NullSink, Obs};
use galvatron_planner::PlannerConfig;
use std::collections::BTreeMap;
use std::io::BufRead;
use std::net::SocketAddr;
use std::sync::Arc;

struct Args {
    replicas: usize,
    addr: String,
    workers: usize,
    queue_capacity: usize,
    gossip_fanout: usize,
    planner: PlannerConfig,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        replicas: 3,
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 64,
        gossip_fanout: 1,
        planner: PlannerConfig::default(),
    };
    let mut optimizer = OptimizerConfig::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--replicas" => parsed.replicas = parse(&value("--replicas")?, "--replicas")?,
            "--addr" => parsed.addr = value("--addr")?,
            "--workers" => parsed.workers = parse(&value("--workers")?, "--workers")?,
            "--queue-capacity" => {
                parsed.queue_capacity = parse(&value("--queue-capacity")?, "--queue-capacity")?;
            }
            "--gossip-fanout" => {
                parsed.gossip_fanout = parse(&value("--gossip-fanout")?, "--gossip-fanout")?;
            }
            "--max-batch" => optimizer.max_batch = parse(&value("--max-batch")?, "--max-batch")?,
            "--jobs" => parsed.planner.jobs = parse(&value("--jobs")?, "--jobs")?,
            "--help" | "-h" => {
                return Err(
                    "usage: galvatron-fleet-router [--replicas N] [--addr HOST:PORT] \
                     [--workers W] [--queue-capacity Q] [--gossip-fanout G] [--max-batch B] \
                     [--jobs J]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    parsed.planner.optimizer = optimizer;
    if parsed.replicas == 0 {
        return Err("--replicas must be at least 1".to_string());
    }
    Ok(parsed)
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn replica_config(args: &Args, id: usize) -> ReplicaConfig {
    ReplicaConfig {
        id,
        workers: args.workers,
        queue_capacity: args.queue_capacity,
        gossip_fanout: args.gossip_fanout,
        planner: args.planner.clone(),
        ..ReplicaConfig::default()
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("galvatron-fleet-router: {message}");
            std::process::exit(2);
        }
    };
    let obs = Obs::new(Arc::new(MetricsRegistry::new()), Arc::new(NullSink));

    let mut replicas: BTreeMap<usize, ReplicaHandle> = BTreeMap::new();
    for id in 0..args.replicas {
        let replica = match FleetReplica::start(replica_config(&args, id), obs.clone()) {
            Ok(replica) => replica,
            Err(e) => {
                eprintln!("galvatron-fleet-router: failed to start replica {id}: {e}");
                std::process::exit(1);
            }
        };
        replicas.insert(id, replica);
    }
    let members: Vec<(usize, SocketAddr)> = replicas.values().map(|r| (r.id(), r.addr())).collect();
    for replica in replicas.values() {
        replica.set_peers(&members);
    }
    let router = match FleetRouter::start(
        RouterConfig {
            addr: args.addr.clone(),
            replicas: members.clone(),
            ..RouterConfig::default()
        },
        obs.clone(),
    ) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("galvatron-fleet-router: failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };

    println!("{}", router.addr());
    for replica in replicas.values() {
        println!("replica {} {}", replica.id(), replica.addr());
    }
    eprintln!(
        "galvatron-fleet-router: routing {} on a {}-replica ring (gossip fanout {})",
        router.addr(),
        replicas.len(),
        args.gossip_fanout
    );

    let mut next_id = args.replicas;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let mut words = line.split_whitespace();
        match words.next() {
            Some("quit") => break,
            Some("kill") => {
                let Some(id) = words.next().and_then(|w| w.parse::<usize>().ok()) else {
                    eprintln!("galvatron-fleet-router: usage: kill <id>");
                    continue;
                };
                let Some(replica) = replicas.remove(&id) else {
                    eprintln!("galvatron-fleet-router: no live replica {id}");
                    continue;
                };
                router.remove_replica(id);
                replica.shutdown();
                let members: Vec<(usize, SocketAddr)> =
                    replicas.values().map(|r| (r.id(), r.addr())).collect();
                for replica in replicas.values() {
                    replica.set_peers(&members);
                }
                eprintln!("galvatron-fleet-router: replica {id} drained and removed");
            }
            Some("join") => {
                let id = next_id;
                next_id += 1;
                let replica = match FleetReplica::start(replica_config(&args, id), obs.clone()) {
                    Ok(replica) => replica,
                    Err(e) => {
                        eprintln!("galvatron-fleet-router: failed to start replica {id}: {e}");
                        continue;
                    }
                };
                // Warm-join from the lowest-numbered live replica before
                // taking traffic.
                if let Some(peer) = replicas.values().next() {
                    match replica.warm_join(peer.addr(), usize::MAX) {
                        Ok(imported) => eprintln!(
                            "galvatron-fleet-router: replica {id} warm-joined with {imported} \
                             entries from replica {}",
                            peer.id()
                        ),
                        Err(e) => eprintln!(
                            "galvatron-fleet-router: replica {id} warm-join failed ({e}); \
                             joining cold"
                        ),
                    }
                }
                replicas.insert(id, replica);
                let members: Vec<(usize, SocketAddr)> =
                    replicas.values().map(|r| (r.id(), r.addr())).collect();
                for replica in replicas.values() {
                    replica.set_peers(&members);
                }
                let joined = &replicas[&id];
                router.add_replica(id, joined.addr());
                println!("replica {} {}", id, joined.addr());
            }
            Some(other) => {
                eprintln!("galvatron-fleet-router: unknown command {other:?} (kill/join/quit)");
            }
            None => {}
        }
    }

    let stats: Vec<String> = replicas
        .values()
        .map(|r| {
            let s = r.stats();
            format!(
                "replica {}: {} requests, {} computed, {} cache hits",
                r.id(),
                s.requests,
                s.computed,
                s.cache_hits
            )
        })
        .collect();
    eprintln!(
        "galvatron-fleet-router: shutting down — {}",
        stats.join("; ")
    );
    router.shutdown();
    for (_, replica) in replicas {
        replica.shutdown();
    }
}
