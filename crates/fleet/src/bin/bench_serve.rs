//! `galvatron-bench-serve` — load generator for the plan-serving layer.
//!
//! **Single-daemon mode** (default) starts an in-process
//! [`PlanServer`](galvatron_serve::PlanServer) and drives five phases over
//! real loopback TCP — cold, warm, the 64-GPU/100-layer cold scaling
//! point, thundering herd, shed — writing `BENCH_serve.json` and failing
//! unless warm-cache throughput beats cold by 5×, the scale point plans
//! exactly one cold DP and answers its warm repeat from cache, the herd
//! coalesces to one computation, and overload sheds.
//!
//! **Fleet mode** (`--fleet N`) starts N event-driven replicas plus a
//! consistent-hash router, all in-process over loopback, and drives:
//!
//! 1. **connections** — ≥1k concurrent idle connections against one
//!    replica, every one of which still answers a ping (the event-driven
//!    connection layer's reason to exist; a thread-per-connection server
//!    would need a thousand threads).
//! 2. **cold / warm** — the request zoo through the router, uncached then
//!    cached, with p50/p99 latency and requests/sec.
//! 3. **byte-identity** — `FleetCheck` per key: every replica must produce
//!    byte-identical answer payloads (this also warms every replica).
//! 4. **zipf** — a zipf(s)-distributed request mix from parallel clients
//!    through the router, the realistic hot-key workload. Every zipf
//!    client carries a seeded trace context, so the fleet's slow-trace
//!    rings fill with real span trees.
//! 5. **trace** — one cold, traced, attribution-opted request through the
//!    router. Its [`AttributionRecord`] phases must sum to within 5% of
//!    the client-observed wall time, the recorded spans must form one
//!    linked tree spanning router → replica → planner, and the router's
//!    `/trace/slow` endpoint must be non-empty after the zipf phase.
//!    Results go to `BENCH_trace.json`; every span the fleet recorded is
//!    dumped as JSONL for `galvatron-trace` to replay.
//! 6. **warm-join** — a brand-new replica pulls a peer snapshot and must
//!    answer every covered question **without a single cold DP run**.
//! 7. **kill** — one replica is shut down mid-run; re-asking every key
//!    through the router must still answer, byte-identical to before.
//!
//! Results go to `BENCH_fleet.json`; the bench exits non-zero if any gate
//! fails.

use galvatron_bench::paper::{scale_point_model, SCALE_POINT_LAYERS};
use galvatron_cluster::{rtx_titan_node, TestbedPreset, GIB};
use galvatron_core::OptimizerConfig;
use galvatron_fleet::{FleetReplica, FleetRouter, ReplicaConfig, RouterConfig};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_obs::trace::record_link;
use galvatron_obs::{
    AttributionRecord, MetricsRegistry, Obs, RingBufferSink, SampleValue, SlowTraceEntry,
    SpanRecord, TraceIdGen,
};
use galvatron_planner::PlannerConfig;
use galvatron_serve::{
    ErrorCode, PlanClient, PlanServer, ServeConfig, WireResult, WireTraceContext,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spans each fleet instance's ring-buffer sink retains for the dump.
const SPAN_SINK_CAPACITY: usize = 8192;

#[derive(Serialize)]
struct PhaseReport {
    requests: usize,
    seconds: f64,
    requests_per_sec: f64,
}

#[derive(Serialize)]
struct HerdReport {
    clients: usize,
    coalesced: u64,
    computed_delta: u64,
    seconds: f64,
}

#[derive(Serialize)]
struct ShedReport {
    queue_capacity: usize,
    offered: usize,
    shed: u64,
    accepted: usize,
}

#[derive(Serialize)]
struct ScalePointReport {
    model: String,
    layers: usize,
    devices: usize,
    budget_gib: u64,
    cold_ms: f64,
    warm_ms: f64,
    cold_computed: u64,
    warm_computed: u64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    distinct_requests: usize,
    max_batch: usize,
    cold: PhaseReport,
    warm: PhaseReport,
    warm_over_cold_speedup: f64,
    scale_point: ScalePointReport,
    herd: HerdReport,
    shed: ShedReport,
}

#[derive(Serialize)]
struct LatencyReport {
    requests: usize,
    seconds: f64,
    requests_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct ConnectionsReport {
    target: usize,
    peak: usize,
    pings_answered: usize,
    seconds: f64,
}

#[derive(Serialize)]
struct ByteIdentityReport {
    keys: usize,
    replicas: usize,
    all_identical: bool,
}

#[derive(Serialize)]
struct ZipfReport {
    clients: usize,
    s: f64,
    latency: LatencyReport,
}

#[derive(Serialize)]
struct TracePhaseReport {
    bench: &'static str,
    trace_id: String,
    client_ms: f64,
    attributed_ms: f64,
    phase_sum_ms: f64,
    phase_sum_over_client: f64,
    phases_ms: Vec<(String, f64)>,
    linked_spans: usize,
    spans_reaching_client_root: usize,
    instances_in_tree: usize,
    slow_trace_entries: usize,
}

#[derive(Serialize)]
struct SpanDumpLine {
    instance: String,
    span: SpanRecord,
}

#[derive(Serialize)]
struct WarmJoinReport {
    imported: usize,
    computed_before: u64,
    computed_after: u64,
    fleet_computed_delta_after_rejoin: u64,
}

#[derive(Serialize)]
struct KillReport {
    killed_id: usize,
    reanswered: usize,
    identical: bool,
    router_failovers: u64,
}

#[derive(Serialize)]
struct FleetBenchReport {
    bench: &'static str,
    replicas: usize,
    distinct_requests: usize,
    max_batch: usize,
    gossip_fanout: usize,
    connections: ConnectionsReport,
    cold: LatencyReport,
    warm: LatencyReport,
    byte_identity: ByteIdentityReport,
    zipf: ZipfReport,
    warm_join: WarmJoinReport,
    kill: KillReport,
    gossip_sent_total: u64,
    computed_total: u64,
}

fn workload() -> Vec<(String, ModelSpec, u64)> {
    let mut requests = Vec::new();
    for layers in [2usize, 4, 6] {
        let model = BertConfig {
            layers,
            hidden: 512,
            heads: 8,
            seq: 128,
            vocab: 30522,
        }
        .build(&format!("bert-{layers}"));
        for budget_gib in [6u64, 8] {
            requests.push((
                format!("bert-{layers}@{budget_gib}g"),
                model.clone(),
                budget_gib * GIB,
            ));
        }
    }
    requests
}

fn run_phase(
    addr: SocketAddr,
    requests: &[(String, ModelSpec, u64)],
) -> std::io::Result<PhaseReport> {
    let topology = rtx_titan_node(8);
    let mut client = PlanClient::connect(addr)?;
    let started = Instant::now();
    for (name, model, budget) in requests {
        let response = client.plan(name, model.clone(), topology.clone(), *budget)?;
        if let WireResult::Error(e) = &response.result {
            if e.code != ErrorCode::Infeasible {
                return Err(std::io::Error::other(format!(
                    "{name}: unexpected error {e:?}"
                )));
            }
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    Ok(PhaseReport {
        requests: requests.len(),
        seconds,
        requests_per_sec: requests.len() as f64 / seconds.max(1e-9),
    })
}

/// p50/p99 via the registry's bucket-interpolated
/// [`HistogramSample::quantile`](galvatron_obs::HistogramSample::quantile)
/// — the same estimator the serving fleet exports, so bench numbers and
/// production metrics agree on semantics.
fn latency_report(per_request_ms: Vec<f64>, seconds: f64) -> LatencyReport {
    let registry = MetricsRegistry::new();
    let histogram = registry.wall_histogram("bench_request_seconds");
    for ms in &per_request_ms {
        histogram.observe(ms / 1e3);
    }
    let snapshot = registry.snapshot();
    let sample = snapshot.metrics.iter().find_map(|m| match &m.value {
        SampleValue::Histogram(h) => Some(h),
        _ => None,
    });
    let quantile_ms = |q: f64| -> f64 { sample.and_then(|h| h.quantile(q)).unwrap_or(0.0) * 1e3 };
    LatencyReport {
        requests: per_request_ms.len(),
        seconds,
        requests_per_sec: per_request_ms.len() as f64 / seconds.max(1e-9),
        p50_ms: quantile_ms(0.50),
        p99_ms: quantile_ms(0.99),
    }
}

/// Run the zoo once through `addr`, timing each request.
fn run_latency_phase(
    addr: SocketAddr,
    requests: &[(String, ModelSpec, u64)],
) -> std::io::Result<LatencyReport> {
    let topology = rtx_titan_node(8);
    let mut client = PlanClient::connect(addr)?;
    let mut per_request_ms = Vec::with_capacity(requests.len());
    let started = Instant::now();
    for (name, model, budget) in requests {
        let one = Instant::now();
        let response = client.plan(name, model.clone(), topology.clone(), *budget)?;
        per_request_ms.push(one.elapsed().as_secs_f64() * 1e3);
        if let WireResult::Error(e) = &response.result {
            if e.code != ErrorCode::Infeasible {
                return Err(std::io::Error::other(format!(
                    "{name}: unexpected error {e:?}"
                )));
            }
        }
    }
    Ok(latency_report(
        per_request_ms,
        started.elapsed().as_secs_f64(),
    ))
}

struct Flags {
    out: Option<String>,
    trace_out: Option<String>,
    spans_out: Option<String>,
    max_batch: usize,
    herd_clients: usize,
    fleet: usize,
    connections: usize,
    zipf_requests: usize,
    zipf_clients: usize,
    zipf_s: f64,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        out: None,
        trace_out: None,
        spans_out: None,
        max_batch: 16,
        herd_clients: 12,
        fleet: 0,
        connections: 1100,
        zipf_requests: 240,
        zipf_clients: 8,
        zipf_s: 1.1,
    };
    let mut args = std::env::args().skip(1);
    let next = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => flags.out = Some(next("--out", &mut args)),
            "--trace-out" => flags.trace_out = Some(next("--trace-out", &mut args)),
            "--spans-out" => flags.spans_out = Some(next("--spans-out", &mut args)),
            "--max-batch" => {
                flags.max_batch = next("--max-batch", &mut args)
                    .parse()
                    .expect("--max-batch requires a number");
            }
            "--herd-clients" => {
                flags.herd_clients = next("--herd-clients", &mut args)
                    .parse()
                    .expect("--herd-clients requires a number");
            }
            "--fleet" => {
                flags.fleet = next("--fleet", &mut args)
                    .parse()
                    .expect("--fleet requires a replica count");
            }
            "--connections" => {
                flags.connections = next("--connections", &mut args)
                    .parse()
                    .expect("--connections requires a number");
            }
            "--zipf-requests" => {
                flags.zipf_requests = next("--zipf-requests", &mut args)
                    .parse()
                    .expect("--zipf-requests requires a number");
            }
            other => {
                eprintln!("galvatron-bench-serve: unknown flag {other}");
                eprintln!(
                    "usage: galvatron-bench-serve [--fleet N] [--out FILE] [--trace-out FILE] \
                     [--spans-out FILE] [--max-batch B] [--herd-clients C] [--connections K] \
                     [--zipf-requests Z]"
                );
                std::process::exit(2);
            }
        }
    }
    flags
}

fn main() {
    let flags = parse_flags();
    if flags.fleet > 0 {
        run_fleet_bench(&flags);
    } else {
        run_single_bench(&flags);
    }
}

// ---------------------------------------------------------------------------
// Fleet mode
// ---------------------------------------------------------------------------

fn planner(max_batch: usize) -> PlannerConfig {
    PlannerConfig {
        optimizer: OptimizerConfig {
            max_batch,
            ..OptimizerConfig::default()
        },
        ..PlannerConfig::default()
    }
}

/// The zipf(s) inverse CDF over `n` ranks (the vendored `rand` has no
/// distribution module, so the sampling is explicit).
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

fn fail(message: &str) -> ! {
    eprintln!("galvatron-bench-serve: FAIL — {message}");
    std::process::exit(1);
}

fn run_fleet_bench(flags: &Flags) {
    let n = flags.fleet;
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let gossip_fanout = 1usize;
    let requests = workload();

    // Start N replicas, introduce them to each other, front with a router.
    // Every instance gets a real span sink so the trace phase can stitch
    // the cross-process tree back together and dump it for the
    // `galvatron-trace` report.
    let mut sinks: Vec<(String, Arc<RingBufferSink>)> = Vec::new();
    let replicas: Vec<_> = (0..n)
        .map(|id| {
            let sink = Arc::new(RingBufferSink::new(SPAN_SINK_CAPACITY));
            sinks.push((format!("replica-{id}"), sink.clone()));
            FleetReplica::start(
                ReplicaConfig {
                    id,
                    workers: 1,
                    gossip_fanout,
                    planner: planner(flags.max_batch),
                    ..ReplicaConfig::default()
                },
                Obs::new(Arc::new(MetricsRegistry::new()), sink),
            )
            .expect("bind replica")
        })
        .collect();
    let members: Vec<(usize, SocketAddr)> = replicas.iter().map(|r| (r.id(), r.addr())).collect();
    for replica in &replicas {
        replica.set_peers(&members);
    }
    let router_sink = Arc::new(RingBufferSink::new(SPAN_SINK_CAPACITY));
    sinks.push(("router".to_string(), router_sink.clone()));
    let router = FleetRouter::start(
        RouterConfig {
            replicas: members.clone(),
            ..RouterConfig::default()
        },
        Obs::new(Arc::new(MetricsRegistry::new()), router_sink),
    )
    .expect("bind router");
    eprintln!(
        "galvatron-bench-serve: fleet of {n} replicas behind router {} ({} distinct requests)",
        router.addr(),
        requests.len()
    );

    // Phase 1: ≥1k concurrent idle connections on replica 0, all answering.
    let connections = connections_phase(&replicas[0], flags.connections);
    eprintln!(
        "  connections: {} open (target {}), {} pings answered ({:.2}s)",
        connections.peak, connections.target, connections.pings_answered, connections.seconds
    );
    if connections.target >= 1000 && connections.peak < 1000 {
        fail("event-driven replica did not sustain 1000 concurrent connections");
    }
    if connections.pings_answered < connections.target {
        fail("not every concurrent connection was answered");
    }

    // Phase 2: cold then warm, through the router.
    let cold = run_latency_phase(router.addr(), &requests).expect("cold phase");
    eprintln!(
        "  cold: {:.2} req/s, p50 {:.1}ms, p99 {:.1}ms",
        cold.requests_per_sec, cold.p50_ms, cold.p99_ms
    );
    let warm = run_latency_phase(router.addr(), &requests).expect("warm phase");
    eprintln!(
        "  warm: {:.2} req/s, p50 {:.1}ms, p99 {:.1}ms",
        warm.requests_per_sec, warm.p50_ms, warm.p99_ms
    );

    // Phase 3: cross-replica byte identity (also warms every replica's
    // cache with every key, which later phases rely on).
    let mut check_client = PlanClient::connect(router.addr()).expect("connect router");
    let mut identity_payloads = Vec::with_capacity(requests.len());
    let mut all_identical = true;
    for (name, model, budget) in &requests {
        let report = check_client
            .fleet_check(name, model.clone(), rtx_titan_node(8), *budget)
            .expect("fleet check");
        if report.replicas != n || !report.byte_identical {
            eprintln!(
                "  byte-identity: {name}: {} replicas, identical={}",
                report.replicas, report.byte_identical
            );
            all_identical = false;
        }
        identity_payloads.push(report.answer_json);
    }
    let byte_identity = ByteIdentityReport {
        keys: requests.len(),
        replicas: n,
        all_identical,
    };
    eprintln!(
        "  byte-identity: {} keys × {} replicas, identical={}",
        byte_identity.keys, byte_identity.replicas, byte_identity.all_identical
    );
    if !all_identical {
        fail("cross-replica answers were not byte-identical");
    }

    // Phase 4: zipf-distributed hot-key mix from parallel clients.
    let zipf = zipf_phase(router.addr(), &requests, flags);
    eprintln!(
        "  zipf(s={}): {} clients, {:.2} req/s, p50 {:.1}ms, p99 {:.1}ms",
        zipf.s,
        zipf.clients,
        zipf.latency.requests_per_sec,
        zipf.latency.p50_ms,
        zipf.latency.p99_ms
    );

    // Phase 5: one cold traced request with latency attribution, plus the
    // slow-trace federation gate. Writes BENCH_trace.json and the span
    // dump `galvatron-trace` replays.
    let trace_out = flags
        .trace_out
        .clone()
        .unwrap_or_else(|| "BENCH_trace.json".to_string());
    let trace = trace_phase(router.addr(), &sinks);
    eprintln!(
        "  trace: {} spans linked ({} reach the client root, {} instances), \
         phases {:.1}ms vs client {:.1}ms, {} slow traces",
        trace.linked_spans,
        trace.spans_reaching_client_root,
        trace.instances_in_tree,
        trace.phase_sum_ms,
        trace.client_ms,
        trace.slow_trace_entries
    );
    let trace_json = serde_json::to_string_pretty(&serde_json::to_value(&trace).unwrap()).unwrap();
    std::fs::write(&trace_out, format!("{trace_json}\n")).expect("write trace report");
    eprintln!("galvatron-bench-serve: wrote {trace_out}");

    // Phase 6: warm-join. A new replica pulls a snapshot from replica 0 and
    // must answer every covered question without a cold DP run.
    let joiner = FleetReplica::start(
        ReplicaConfig {
            id: n,
            workers: 1,
            gossip_fanout,
            planner: planner(flags.max_batch),
            ..ReplicaConfig::default()
        },
        Obs::noop(),
    )
    .expect("bind joiner");
    let mut joined_members = members.clone();
    joined_members.push((joiner.id(), joiner.addr()));
    joiner.set_peers(&joined_members);
    let imported = joiner
        .warm_join(replicas[0].addr(), usize::MAX)
        .expect("warm join");
    let computed_before = joiner.stats().computed;
    // Ask the joiner directly for every key the snapshot covered.
    let direct = run_phase(joiner.addr(), &requests).expect("joiner direct phase");
    let computed_after = joiner.stats().computed;
    eprintln!(
        "  warm-join: {imported} entries imported, {} direct answers, {} cold DP runs",
        direct.requests,
        computed_after - computed_before
    );
    if computed_after > computed_before {
        fail("warm-joined replica ran cold DP for questions its peer snapshot covered");
    }
    // Rejoin the ring: remapped keys must be served from the imported
    // cache, not recomputed, across the whole fleet.
    let fleet_computed = |replicas: &[galvatron_fleet::ReplicaHandle]| -> u64 {
        replicas.iter().map(|r| r.stats().computed).sum::<u64>() + joiner.stats().computed
    };
    let computed_before_rejoin = fleet_computed(&replicas);
    router.add_replica(joiner.id(), joiner.addr());
    run_phase(router.addr(), &requests).expect("post-join phase");
    let fleet_computed_delta = fleet_computed(&replicas) - computed_before_rejoin;
    if fleet_computed_delta > 0 {
        fail("rejoining the warm replica triggered cold DP runs the snapshot covered");
    }
    let warm_join = WarmJoinReport {
        imported,
        computed_before,
        computed_after,
        fleet_computed_delta_after_rejoin: fleet_computed_delta,
    };

    // Phase 7: kill replica 1 mid-run; every key must still answer through
    // the router, byte-identical to the fleet-check payloads.
    let gossip_sent_total: u64 =
        replicas.iter().map(|r| r.gossip_sent()).sum::<u64>() + joiner.gossip_sent();
    let mut replicas = replicas;
    let killed = replicas.remove(1);
    let killed_id = killed.id();
    killed.shutdown();
    let mut kill_client = PlanClient::connect(router.addr()).expect("connect router");
    let mut reanswered = 0usize;
    let mut identical = true;
    for ((name, model, budget), expected) in requests.iter().zip(&identity_payloads) {
        let response = kill_client
            .plan(name, model.clone(), rtx_titan_node(8), *budget)
            .expect("post-kill answer");
        let payload = serde_json::to_string(&response.result).expect("serialize payload");
        if &payload != expected {
            eprintln!("  kill: {name}: answer changed after failover");
            identical = false;
        }
        reanswered += 1;
    }
    let kill = KillReport {
        killed_id,
        reanswered,
        identical,
        router_failovers: router.failovers(),
    };
    eprintln!(
        "  kill: replica {} down, {} keys reanswered, identical={}, {} failovers",
        kill.killed_id, kill.reanswered, kill.identical, kill.router_failovers
    );
    if !identical {
        fail("answers changed after killing a replica");
    }

    let computed_total = fleet_computed(&replicas);
    router.shutdown();
    for replica in replicas {
        replica.shutdown();
    }
    joiner.shutdown();

    // Dump every span the fleet recorded, one JSONL line per span tagged
    // with its instance — the input `galvatron-trace` replays into an
    // attribution table and a merged Chrome trace.
    let spans_out = flags
        .spans_out
        .clone()
        .unwrap_or_else(|| "BENCH_trace_spans.jsonl".to_string());
    let mut dump = String::new();
    let mut dumped = 0usize;
    for (instance, sink) in &sinks {
        for span in sink.records() {
            let line = SpanDumpLine {
                instance: instance.clone(),
                span,
            };
            dump.push_str(&serde_json::to_string(&line).expect("serialize span"));
            dump.push('\n');
            dumped += 1;
        }
    }
    std::fs::write(&spans_out, dump).expect("write span dump");
    eprintln!("galvatron-bench-serve: wrote {spans_out} ({dumped} spans)");

    let report = FleetBenchReport {
        bench: "galvatron-fleet loopback",
        replicas: n,
        distinct_requests: requests.len(),
        max_batch: flags.max_batch,
        gossip_fanout,
        connections,
        cold,
        warm,
        byte_identity,
        zipf,
        warm_join,
        kill,
        gossip_sent_total,
        computed_total,
    };
    let json = serde_json::to_string_pretty(&serde_json::to_value(&report).unwrap()).unwrap();
    std::fs::write(&out, format!("{json}\n")).expect("write report");
    eprintln!("galvatron-bench-serve: wrote {out}");
}

/// Open `target` concurrent connections against one replica, verify the
/// gauge reaches the target, then round-trip a ping on every one of them.
fn connections_phase(replica: &galvatron_fleet::ReplicaHandle, target: usize) -> ConnectionsReport {
    let started = Instant::now();
    let addr = replica.addr();
    let mut streams = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(addr) {
            Ok(stream) => streams.push(stream),
            Err(e) => {
                eprintln!("  connections: connect {i} failed: {e}");
                break;
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut peak = replica.connections();
    while peak < streams.len() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        peak = peak.max(replica.connections());
    }
    // Every connection answers a ping while all of them are open.
    let ping_line = serde_json::to_string(&galvatron_serve::WireRequest {
        id: 1,
        name: "conn".to_string(),
        trace: None,
        body: galvatron_serve::RequestBody::Ping,
    })
    .unwrap();
    let mut pings_answered = 0usize;
    for stream in &mut streams {
        if stream
            .write_all(format!("{ping_line}\n").as_bytes())
            .is_err()
        {
            continue;
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() && line.contains("Pong") {
            pings_answered += 1;
        }
        peak = peak.max(replica.connections());
    }
    ConnectionsReport {
        target,
        peak,
        pings_answered,
        seconds: started.elapsed().as_secs_f64(),
    }
}

/// Zipf-distributed requests over the (cached) workload from parallel
/// clients through the router.
fn zipf_phase(
    router_addr: SocketAddr,
    requests: &[(String, ModelSpec, u64)],
    flags: &Flags,
) -> ZipfReport {
    let zipf = Zipf::new(requests.len(), flags.zipf_s);
    let per_client = flags.zipf_requests / flags.zipf_clients.max(1);
    let started = Instant::now();
    let workers: Vec<_> = (0..flags.zipf_clients.max(1))
        .map(|client_idx| {
            // Deterministic per-client schedule, sampled up front so the
            // threads only measure serving latency.
            let mut rng = StdRng::seed_from_u64(0x5eed_2026 + client_idx as u64);
            let schedule: Vec<usize> = (0..per_client).map(|_| zipf.sample(&mut rng)).collect();
            let requests: Vec<(String, ModelSpec, u64)> = schedule
                .into_iter()
                .map(|rank| requests[rank].clone())
                .collect();
            std::thread::spawn(move || -> Vec<f64> {
                let topology = rtx_titan_node(8);
                let mut client = PlanClient::connect(router_addr).expect("connect router");
                // Every zipf request is traced with attribution opted in:
                // seeded ids, so reruns mint the same trace ids and the
                // fleet's slow-trace rings fill with real span trees.
                let mut ids = TraceIdGen::new(0x7ace_0000 + client_idx as u64);
                let mut latencies = Vec::with_capacity(requests.len());
                for (name, model, budget) in requests {
                    client.set_trace(WireTraceContext::from_context(ids.next_context(), true));
                    let one = Instant::now();
                    let response = client
                        .plan(&name, model, topology.clone(), budget)
                        .expect("zipf answer");
                    latencies.push(one.elapsed().as_secs_f64() * 1e3);
                    assert!(
                        !matches!(&response.result, WireResult::Error(e)
                            if e.code != ErrorCode::Infeasible),
                        "zipf request failed: {:?}",
                        response.result
                    );
                }
                latencies
            })
        })
        .collect();
    let mut per_request_ms = Vec::new();
    for worker in workers {
        per_request_ms.extend(worker.join().expect("zipf client"));
    }
    let seconds = started.elapsed().as_secs_f64();
    ZipfReport {
        clients: flags.zipf_clients.max(1),
        s: flags.zipf_s,
        latency: latency_report(per_request_ms, seconds),
    }
}

fn http_get_body(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send http request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => response,
    }
}

/// One cold, traced, attribution-opted request through the router, then
/// the federation drain. Gates: the attribution phases must sum to within
/// 5% of the client-observed wall time; the recorded spans must form one
/// linked tree spanning router → replica → planner; and `/trace/slow`
/// must be non-empty after the traced zipf phase.
fn trace_phase(
    router_addr: SocketAddr,
    sinks: &[(String, Arc<RingBufferSink>)],
) -> TracePhaseReport {
    // A model absent from the workload, so the DP actually runs — and deep
    // enough that `dp_compute` dominates: the event loops on either side
    // of the wire sleep up to ~1ms each between sweeps, a bounded slack no
    // server-side phase can see, so the solve must dwarf it for the 5%
    // gate to be meaningful rather than noise.
    let model = BertConfig {
        layers: 128,
        hidden: 512,
        heads: 8,
        seq: 128,
        vocab: 30522,
    }
    .build("bert-traced");
    let mut ids = TraceIdGen::new(0x7ace_c01d);
    let ctx = ids.next_context();
    let mut client = PlanClient::connect(router_addr).expect("connect router");
    // Serialize before starting the clock and parse after stopping it:
    // client-observed latency is the wire round trip, the window the
    // server-side attribution can actually account for.
    let request_line = serde_json::to_string(&galvatron_serve::WireRequest {
        id: 1,
        name: "bert-traced@8g".to_string(),
        trace: Some(WireTraceContext::from_context(ctx, true)),
        body: galvatron_serve::RequestBody::Plan(galvatron_serve::PlanBody {
            model,
            topology: rtx_titan_node(8),
            budget_bytes: 8 * GIB,
        }),
    })
    .expect("serialize traced request");
    let started = Instant::now();
    let response_line = client
        .round_trip_raw(&request_line)
        .expect("traced request");
    let client_seconds = started.elapsed().as_secs_f64();
    let response: galvatron_serve::WireResponse =
        serde_json::from_str(&response_line).expect("parse traced response");
    if !matches!(response.result, WireResult::Plan(_)) {
        fail(&format!(
            "traced request did not return a plan: {:?}",
            response.result
        ));
    }
    let attr: AttributionRecord = match response.attribution {
        Some(attr) => attr,
        None => fail("traced request carried no attribution record"),
    };
    if attr.trace_id != ctx.trace_id.to_hex() {
        fail("attribution trace id does not match the client's trace context");
    }
    let phase_sum = attr.phase_sum();
    let ratio = phase_sum / client_seconds.max(1e-9);
    if (ratio - 1.0).abs() > 0.05 {
        fail(&format!(
            "attribution phases sum to {:.2}ms but the client observed {:.2}ms \
             ({:+.1}% off, gate ±5%)",
            phase_sum * 1e3,
            client_seconds * 1e3,
            (ratio - 1.0) * 1e2
        ));
    }

    // Stitch the cross-process tree: collect every trace-linked span for
    // our trace id from every instance's sink and walk parent links back
    // to the client's root span.
    let mut linked: Vec<(&str, SpanRecord)> = Vec::new();
    for (instance, sink) in sinks {
        for record in sink.records() {
            if let Some(link) = record_link(&record) {
                if link.trace_id == ctx.trace_id {
                    linked.push((instance.as_str(), record));
                }
            }
        }
    }
    let parents: HashMap<String, String> = linked
        .iter()
        .filter_map(|(_, r)| record_link(r))
        .map(|link| (link.span_id.to_hex(), link.parent_span_id.to_hex()))
        .collect();
    let root = ctx.span_id.to_hex();
    let reaches_root = |record: &SpanRecord| -> bool {
        let Some(link) = record_link(record) else {
            return false;
        };
        let mut id = link.span_id.to_hex();
        for _ in 0..linked.len() + 1 {
            if id == root {
                return true;
            }
            match parents.get(&id) {
                Some(parent) => id = parent.clone(),
                None => return false,
            }
        }
        false
    };
    let spans_reaching_client_root = linked.iter().filter(|(_, r)| reaches_root(r)).count();
    for required in ["route_plan", "serve_request", "dp_compute", "plan_request"] {
        if !linked
            .iter()
            .any(|(_, r)| r.name == required && reaches_root(r))
        {
            fail(&format!(
                "span tree is missing a linked `{required}` span reaching the client root"
            ));
        }
    }
    let mut instances: Vec<&str> = linked
        .iter()
        .filter(|(_, r)| reaches_root(r))
        .map(|(instance, _)| *instance)
        .collect();
    instances.sort_unstable();
    instances.dedup();
    if instances.len() < 2 {
        fail("span tree did not cross processes (expected router + replica)");
    }

    // Federation: the router merges every live replica's slow-trace ring;
    // after a fully traced zipf phase it must have entries.
    let slow_body = http_get_body(router_addr, "/trace/slow");
    let slow: Vec<SlowTraceEntry> = serde_json::from_str(&slow_body).unwrap_or_default();
    if slow.is_empty() {
        fail("/trace/slow returned no entries after the traced zipf phase");
    }

    TracePhaseReport {
        bench: "galvatron-trace attribution",
        trace_id: ctx.trace_id.to_hex(),
        client_ms: client_seconds * 1e3,
        attributed_ms: attr.total_seconds * 1e3,
        phase_sum_ms: phase_sum * 1e3,
        phase_sum_over_client: ratio,
        phases_ms: attr
            .phases
            .iter()
            .map(|p| (p.phase.clone(), p.seconds * 1e3))
            .collect(),
        linked_spans: linked.len(),
        spans_reaching_client_root,
        instances_in_tree: instances.len(),
        slow_trace_entries: slow.len(),
    }
}

// ---------------------------------------------------------------------------
// Single-daemon mode (the original bench, unchanged gates)
// ---------------------------------------------------------------------------

fn run_single_bench(flags: &Flags) {
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let max_batch = flags.max_batch;
    let herd_clients = flags.herd_clients;
    let queue_capacity = 4usize;
    let config = ServeConfig {
        workers: 2,
        queue_capacity,
        planner: planner(max_batch),
        ..ServeConfig::default()
    };
    let handle = PlanServer::start(config, Obs::noop()).expect("bind loopback");
    let addr = handle.addr();
    let requests = workload();
    eprintln!(
        "galvatron-bench-serve: {} distinct requests against {addr}",
        requests.len()
    );

    // Phase 1+2: cold, then warm (identical requests, now cached).
    let cold = run_phase(addr, &requests).expect("cold phase");
    eprintln!(
        "  cold: {:.2} req/s ({:.3}s)",
        cold.requests_per_sec, cold.seconds
    );
    let warm = run_phase(addr, &requests).expect("warm phase");
    eprintln!(
        "  warm: {:.2} req/s ({:.3}s)",
        warm.requests_per_sec, warm.seconds
    );

    // Phase 3: the 64-GPU/100-layer cold scaling point — the arena-DP
    // rebuild's serving-side face. One uncached plan of the scale model on
    // the Table-4 A100 testbed must run exactly one DP compute; its warm
    // repeat must be a pure cache hit.
    let scale_spec = scale_point_model();
    assert_eq!(scale_spec.n_layers(), SCALE_POINT_LAYERS);
    let scale_topology = TestbedPreset::A100x64.topology();
    let scale_devices = scale_topology.n_devices();
    let mut scale_client = PlanClient::connect(addr).expect("connect");
    let before_scale = handle.stats();
    let scale_started = Instant::now();
    let scale_cold_response = scale_client
        .plan(
            "scale-64gpu-100l",
            scale_spec.clone(),
            scale_topology.clone(),
            16 * GIB,
        )
        .expect("scale cold response");
    let scale_cold_ms = scale_started.elapsed().as_secs_f64() * 1e3;
    let mid_scale = handle.stats();
    let scale_started = Instant::now();
    let scale_warm_response = scale_client
        .plan(
            "scale-64gpu-100l",
            scale_spec.clone(),
            scale_topology,
            16 * GIB,
        )
        .expect("scale warm response");
    let scale_warm_ms = scale_started.elapsed().as_secs_f64() * 1e3;
    let after_scale = handle.stats();
    for (phase, response) in [
        ("cold", &scale_cold_response),
        ("warm", &scale_warm_response),
    ] {
        assert!(
            matches!(response.result, WireResult::Plan(_)),
            "scale point {phase} request got {:?}",
            response.result
        );
    }
    let scale_point = ScalePointReport {
        model: scale_spec.name.clone(),
        layers: scale_spec.n_layers(),
        devices: scale_devices,
        budget_gib: 16,
        cold_ms: scale_cold_ms,
        warm_ms: scale_warm_ms,
        cold_computed: mid_scale.computed - before_scale.computed,
        warm_computed: after_scale.computed - mid_scale.computed,
    };
    eprintln!(
        "  scale point: {} ({} layers) on {} devices — cold {:.1}ms ({} computed), warm {:.1}ms ({} computed)",
        scale_point.model,
        scale_point.layers,
        scale_point.devices,
        scale_point.cold_ms,
        scale_point.cold_computed,
        scale_point.warm_ms,
        scale_point.warm_computed
    );

    // Phase 4: thundering herd on one *uncached* key. Pause the workers so
    // every client demonstrably overlaps, then release.
    let herd_model = BertConfig {
        layers: 3,
        hidden: 512,
        heads: 8,
        seq: 128,
        vocab: 30522,
    }
    .build("bert-herd");
    let before = handle.stats();
    handle.pause();
    let herd_started = Instant::now();
    let joiners: Vec<_> = (0..herd_clients)
        .map(|i| {
            let model = herd_model.clone();
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                client
                    .plan(&format!("herd-{i}"), model, rtx_titan_node(8), 8 * GIB)
                    .expect("herd response")
            })
        })
        .collect();
    // Give the herd a moment to pile onto the flight, then release.
    std::thread::sleep(Duration::from_millis(200));
    handle.resume();
    for joiner in joiners {
        let response = joiner.join().expect("herd client");
        assert!(
            matches!(response.result, WireResult::Plan(_)),
            "herd client got {:?}",
            response.result
        );
    }
    let herd_seconds = herd_started.elapsed().as_secs_f64();
    let after = handle.stats();
    let herd = HerdReport {
        clients: herd_clients,
        coalesced: after.coalesced - before.coalesced,
        computed_delta: after.computed - before.computed,
        seconds: herd_seconds,
    };
    eprintln!(
        "  herd: {} clients, {} coalesced, {} computed ({:.3}s)",
        herd.clients, herd.coalesced, herd.computed_delta, herd.seconds
    );

    // Phase 5: offer distinct requests past the queue capacity with the
    // workers paused; the excess must shed deterministically.
    handle.pause();
    let before_shed = handle.stats();
    let offered = queue_capacity + 4;
    let shed_clients: Vec<_> = (0..offered)
        .map(|i| {
            std::thread::spawn(move || {
                let model = BertConfig {
                    layers: 2,
                    hidden: 256 + 64 * i as u64, // distinct models: no coalescing
                    heads: 8,
                    seq: 128,
                    vocab: 30522,
                }
                .build(&format!("shed-{i}"));
                let mut client = PlanClient::connect(addr).expect("connect");
                client
                    .plan(&format!("shed-{i}"), model, rtx_titan_node(8), 8 * GIB)
                    .expect("shed response")
            })
        })
        .collect();
    // Let every request reach admission control before releasing workers.
    std::thread::sleep(Duration::from_millis(500));
    handle.resume();
    let mut accepted = 0usize;
    for client in shed_clients {
        let response = client.join().expect("shed client");
        match response.result {
            WireResult::Error(e) if e.code == ErrorCode::Overloaded => {}
            _ => accepted += 1,
        }
    }
    let after_shed = handle.stats();
    let shed = ShedReport {
        queue_capacity,
        offered,
        shed: after_shed.shed - before_shed.shed,
        accepted,
    };
    eprintln!(
        "  shed: {} offered into capacity {}, {} shed, {} accepted",
        shed.offered, shed.queue_capacity, shed.shed, shed.accepted
    );
    handle.shutdown();

    let speedup = warm.requests_per_sec / cold.requests_per_sec.max(1e-9);
    let report = BenchReport {
        bench: "galvatron-serve loopback",
        distinct_requests: requests.len(),
        max_batch,
        cold,
        warm,
        warm_over_cold_speedup: speedup,
        scale_point,
        herd,
        shed,
    };
    let json = serde_json::to_string_pretty(&serde_json::to_value(&report).unwrap()).unwrap();
    std::fs::write(&out, format!("{json}\n")).expect("write report");
    eprintln!("galvatron-bench-serve: wrote {out} (warm/cold speedup {speedup:.1}×)");

    if speedup < 5.0 {
        eprintln!("galvatron-bench-serve: FAIL — warm-cache throughput below 5× cold");
        std::process::exit(1);
    }
    if report.scale_point.cold_computed != 1 || report.scale_point.warm_computed != 0 {
        eprintln!(
            "galvatron-bench-serve: FAIL — scale point computed {} cold / {} warm, expected 1 / 0",
            report.scale_point.cold_computed, report.scale_point.warm_computed
        );
        std::process::exit(1);
    }
    if report.herd.computed_delta != 1 {
        eprintln!(
            "galvatron-bench-serve: FAIL — herd computed {} times, expected 1",
            report.herd.computed_delta
        );
        std::process::exit(1);
    }
    if report.shed.shed == 0 {
        eprintln!("galvatron-bench-serve: FAIL — no request was shed past capacity");
        std::process::exit(1);
    }
}
