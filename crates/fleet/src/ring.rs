//! Consistent-hash ring over plan-cache keys.
//!
//! The fleet shards the response-cache keyspace — `(model JSON, topology
//! fingerprint, budget)`, see [`PlanKey`] — across replicas with a classic
//! consistent-hash ring: each replica contributes [`DEFAULT_VNODES`]
//! virtual points, a key is owned by the first point clockwise from its
//! hash, and removing a replica only remaps the keys it owned. With `K`
//! keys and `N` replicas, adding one replica remaps ~`K/(N+1)` keys (the
//! proptest suite checks this bound).
//!
//! Hashing is FNV-1a with explicit constants — the same idiom as
//! [`ClusterTopology::fingerprint`] — because routing must be
//! deterministic **across processes**: the router and every replica agree
//! on ownership without coordination, and `std`'s `DefaultHasher` is
//! process-seeded. The golden-value tests pin the exact hash outputs so an
//! accidental algorithm change cannot slip through.
//!
//! [`PlanKey`]: galvatron_serve::PlanKey
//! [`ClusterTopology::fingerprint`]: galvatron_cluster::ClusterTopology::fingerprint

use galvatron_serve::PlanKey;
use std::collections::BTreeSet;

/// Virtual points each replica contributes to the ring. 64 points keeps
/// the max/mean keyspace imbalance under ~30% for small fleets while the
/// ring stays tiny (N×64 sorted u64s).
pub const DEFAULT_VNODES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice. Deterministic across processes and platforms,
/// unlike `std::collections::hash_map::DefaultHasher` which is seeded per
/// process.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The ring position of a plan-cache key: FNV-1a over the model JSON, the
/// topology fingerprint and the budget, with separators so field
/// boundaries cannot alias.
pub fn plan_key_hash(key: &PlanKey) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        // Field separator: a byte that cannot appear in the length-8
        // little-endian suffixes ambiguously because it is mixed exactly
        // once between fields.
        hash ^= 0xff;
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    mix(key.model_json.as_bytes());
    mix(&key.topology_fingerprint.to_le_bytes());
    mix(&key.budget_bytes.to_le_bytes());
    hash
}

fn vnode_hash(id: usize, vnode: usize) -> u64 {
    let mut bytes = Vec::with_capacity(38);
    bytes.extend_from_slice(b"galvatron-fleet-replica\x00");
    bytes.extend_from_slice(&(id as u64).to_le_bytes());
    bytes.extend_from_slice(&(vnode as u64).to_le_bytes());
    stable_hash(&bytes)
}

/// A consistent-hash ring mapping `u64` positions to replica ids.
///
/// Construction is deterministic: the same member set always produces the
/// same ring, whichever order members were added in and in whichever
/// process — that is what lets the router and each replica route
/// independently.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    members: BTreeSet<usize>,
    /// Sorted `(position, replica id)` points. Ties (astronomically
    /// unlikely with 64-bit positions) break by replica id so the ring
    /// stays order-independent.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual points per replica.
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            members: BTreeSet::new(),
            points: Vec::new(),
        }
    }

    /// A ring with [`DEFAULT_VNODES`] points per replica over `ids`.
    pub fn with_members(ids: &[usize]) -> Self {
        let mut ring = HashRing::new(DEFAULT_VNODES);
        for &id in ids {
            ring.add(id);
        }
        ring
    }

    /// Add a replica (no-op if already present).
    pub fn add(&mut self, id: usize) {
        if self.members.insert(id) {
            self.rebuild();
        }
    }

    /// Remove a replica (no-op if absent).
    pub fn remove(&mut self, id: usize) {
        if self.members.remove(&id) {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.members.len() * self.vnodes);
        for &id in &self.members {
            for v in 0..self.vnodes {
                self.points.push((vnode_hash(id, v), id));
            }
        }
        self.points.sort_unstable();
    }

    /// Virtual points each member contributes (the ring's vnode
    /// parameter; [`DEFAULT_VNODES`] unless constructed otherwise).
    pub fn vnodes_per_member(&self) -> usize {
        self.vnodes
    }

    /// Member ids, ascending.
    pub fn members(&self) -> Vec<usize> {
        self.members.iter().copied().collect()
    }

    /// Number of replicas on the ring.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no replicas.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is on the ring.
    pub fn contains(&self, id: usize) -> bool {
        self.members.contains(&id)
    }

    /// The replica owning ring position `hash` (first point clockwise),
    /// or `None` on an empty ring.
    pub fn route_hash(&self, hash: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        let (_, id) = self.points[idx % self.points.len()];
        Some(id)
    }

    /// The replica owning `key`.
    pub fn route(&self, key: &PlanKey) -> Option<usize> {
        self.route_hash(plan_key_hash(key))
    }

    /// Up to `n` **distinct** replicas in ring order starting at the owner
    /// of `hash`. `successors(h, ring.len())` is every replica, owner
    /// first — the gossip layer pushes a fresh answer to
    /// `successors(..)[1..=fanout]`, so replicated copies land exactly
    /// where the keyspace would remap if the owner died.
    pub fn successors(&self, hash: u64, n: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n.min(self.members.len()));
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        for offset in 0..self.points.len() {
            let (_, id) = self.points[(start + offset) % self.points.len()];
            if !out.contains(&id) {
                out.push(id);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PlanKey {
        PlanKey {
            model_json: format!("{{\"model\":{i}}}"),
            topology_fingerprint: 0x9e37_79b9_7f4a_7c15 ^ i,
            budget_bytes: 8 << 30,
        }
    }

    #[test]
    fn stable_hash_matches_fnv1a_reference_values() {
        // Pinned FNV-1a test vectors (offset 0xcbf29ce484222325, prime
        // 0x100000001b3). A change to the algorithm breaks cross-process
        // routing, so the exact values are part of the contract.
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn routing_is_deterministic_and_order_independent() {
        let forward = HashRing::with_members(&[0, 1, 2, 3]);
        let mut reversed = HashRing::new(DEFAULT_VNODES);
        for id in [3, 2, 0, 1] {
            reversed.add(id);
        }
        for i in 0..256 {
            let k = key(i);
            assert_eq!(forward.route(&k), reversed.route(&k));
        }
    }

    #[test]
    fn remove_only_remaps_the_dead_replicas_keys() {
        let full = HashRing::with_members(&[0, 1, 2]);
        let mut without_1 = full.clone();
        without_1.remove(1);
        for i in 0..512 {
            let k = key(i);
            let owner = full.route(&k).unwrap();
            if owner != 1 {
                assert_eq!(without_1.route(&k), Some(owner), "key {i} moved needlessly");
            } else {
                assert_ne!(without_1.route(&k), Some(1));
            }
        }
    }

    #[test]
    fn successors_are_distinct_and_start_at_the_owner() {
        let ring = HashRing::with_members(&[0, 1, 2, 3]);
        for i in 0..64 {
            let h = plan_key_hash(&key(i));
            let succ = ring.successors(h, 4);
            assert_eq!(succ.len(), 4);
            assert_eq!(succ[0], ring.route_hash(h).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "successors must be distinct: {succ:?}");
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(DEFAULT_VNODES);
        assert!(ring.route_hash(42).is_none());
        assert!(ring.successors(42, 3).is_empty());
    }
}
