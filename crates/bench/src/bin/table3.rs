//! Regenerates Table 3: 16-GPU (2 × 8 RTX TITAN over 100 Gb InfiniBand)
//! comparison under 8/16 GB budgets.

use galvatron_bench::paper;
use galvatron_bench::render::{agreement, render_cells, write_json};
use galvatron_bench::{
    evaluate_table_observed, jobs_from_args, metrics_out_from_args, resolve_jobs,
    write_metrics_snapshot, TableSpec,
};
use galvatron_cluster::TestbedPreset;
use galvatron_core::OptimizerConfig;
use galvatron_obs::{MetricsRegistry, NullSink, Obs};
use std::sync::Arc;

fn main() {
    let jobs = jobs_from_args();
    let metrics_out = metrics_out_from_args();
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::new(registry.clone(), Arc::new(NullSink));
    let budgets = vec![8u32, 16];
    let models = paper::TABLE3_MODELS.to_vec();
    let spec = TableSpec {
        name: "table3",
        topology: TestbedPreset::RtxTitan16.topology(),
        budgets_gb: budgets.clone(),
        models: models.clone(),
        config: OptimizerConfig {
            max_batch: 1024,
            ..OptimizerConfig::default()
        },
    };
    let started = std::time::Instant::now();
    eprintln!("table3: running on {} threads...", resolve_jobs(jobs));
    let cells = evaluate_table_observed(&spec, jobs, &obs);
    eprintln!("table3: done in {:.1}s", started.elapsed().as_secs_f64());

    println!("{}", render_cells(&cells, &models, &budgets));

    println!("--- paper-vs-measured agreement ---");
    for block in paper::table3() {
        let a = agreement(&cells, &block, &models);
        println!(
            "{:>3}G: feasibility {}/{} cells match, Galvatron dominance {}/{}, \
             geomean throughput ratio ours/paper {:.2}",
            a.budget_gb,
            a.feasibility_matches,
            a.cells,
            a.dominance_matches,
            a.dominance_cells,
            a.geomean_ratio
        );
    }

    let path = write_json("table3", &cells).expect("write results");
    eprintln!("wrote {}", path.display());

    if let Some(path) = metrics_out {
        write_metrics_snapshot(&path, &registry, false);
        eprintln!("wrote metrics snapshot to {path}");
    }
}
