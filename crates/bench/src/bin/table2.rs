//! Regenerates Table 2: statistics of the evaluated models, with the
//! paper's reported values alongside.

use galvatron_bench::render::write_json;
use galvatron_model::{ModelStats, PaperModel};

fn main() {
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>8} {:>14} {:>14} {:>8}",
        "Model", "Layers", "Params", "paper", "Δ%", "Act/sample", "paper", "Δ%"
    );
    let mut rows = Vec::new();
    for m in PaperModel::ALL {
        let stats = ModelStats::of(&m.spec());
        let p_params = m.paper_param_count() as f64 / 1e6;
        let p_act = m.paper_activation_mb();
        let d_params = 100.0 * (stats.params_millions() / p_params - 1.0);
        let d_act = 100.0 * (stats.activation_mb() / p_act - 1.0);
        println!(
            "{:<14} {:>10} {:>11.1}M {:>11.1}M {:>+7.2} {:>12.2}MB {:>12.2}MB {:>+7.2}",
            m.name(),
            stats.transformer_layers,
            stats.params_millions(),
            p_params,
            d_params,
            stats.activation_mb(),
            p_act,
            d_act
        );
        rows.push(stats);
    }
    let path = write_json("table2", &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
