//! Regenerates Figure 5: the optimal parallelism plans Galvatron emits for
//! BERT-Huge-32 and Swin-Huge-32 under 8 GB and 12 GB budgets.
//!
//! The paper's qualitative findings to look for in the output:
//! * BERT @ 8 GB combines all four paradigms (PP appears);
//! * BERT @ 12 GB drops PP for TP+DP / TP+SDP mixtures with a larger batch;
//! * Swin assigns different strategies per stage depth — shallow layers
//!   (large activations, few parameters) lean on data parallelism, deep
//!   layers (many parameters) on tensor/sharded parallelism.

use galvatron_bench::render::write_json;
use galvatron_cluster::{TestbedPreset, GIB};
use galvatron_core::{GalvatronOptimizer, OptimizerConfig};
use galvatron_model::PaperModel;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PlanRecord {
    model: String,
    budget_gb: u32,
    batch: usize,
    estimated_throughput: f64,
    summary: String,
}

fn main() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 256,
        ..OptimizerConfig::default()
    });

    let mut records = Vec::new();
    for model_id in [PaperModel::BertHuge32, PaperModel::SwinHuge32] {
        let model = model_id.spec();
        for budget_gb in [8u32, 12] {
            match optimizer
                .optimize(&model, &topology, budget_gb as u64 * GIB)
                .expect("topology lookups succeed")
            {
                Some(outcome) => {
                    println!(
                        "### {} @ {budget_gb} GB — batch {}, {:.2} samples/s (estimated)",
                        model_id.name(),
                        outcome.plan.global_batch,
                        outcome.throughput_samples_per_sec
                    );
                    println!("{}", outcome.plan.summary());
                    records.push(PlanRecord {
                        model: model_id.name().to_string(),
                        budget_gb,
                        batch: outcome.plan.global_batch,
                        estimated_throughput: outcome.throughput_samples_per_sec,
                        summary: outcome.plan.summary(),
                    });
                }
                None => println!("### {} @ {budget_gb} GB — infeasible", model_id.name()),
            }
        }
    }

    let path = write_json("fig5", &records).expect("write results");
    eprintln!("wrote {}", path.display());
}
