//! Regenerates Table 4: 64-GPU (8 × 8 A100, NVLink + InfiniBand)
//! comparison on the 10-billion-parameter models under 16/32 GB budgets.

use galvatron_bench::paper;
use galvatron_bench::render::{agreement, render_cells, write_json};
use galvatron_bench::{
    evaluate_table_observed, jobs_from_args, metrics_out_from_args, resolve_jobs,
    write_metrics_snapshot, TableSpec,
};
use galvatron_cluster::{TestbedPreset, MIB};
use galvatron_core::OptimizerConfig;
use galvatron_obs::{MetricsRegistry, NullSink, Obs};
use std::sync::Arc;

fn main() {
    let jobs = jobs_from_args();
    let metrics_out = metrics_out_from_args();
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::new(registry.clone(), Arc::new(NullSink));
    let budgets = vec![16u32, 32];
    let models = paper::TABLE4_MODELS.to_vec();
    let spec = TableSpec {
        name: "table4",
        topology: TestbedPreset::A100x64.topology(),
        budgets_gb: budgets.clone(),
        models: models.clone(),
        config: OptimizerConfig {
            max_batch: 1024,
            sub_step_batches: true,
            // Coarser quantization keeps the 128-layer DP tractable —
            // the "large memory granularity" knob of §3.3.
            memory_granularity: 64 * MIB,
            ..OptimizerConfig::default()
        },
    };
    let started = std::time::Instant::now();
    eprintln!("table4: running on {} threads...", resolve_jobs(jobs));
    let cells = evaluate_table_observed(&spec, jobs, &obs);
    eprintln!("table4: done in {:.1}s", started.elapsed().as_secs_f64());

    println!("{}", render_cells(&cells, &models, &budgets));

    println!("--- paper-vs-measured agreement ---");
    for block in paper::table4() {
        let a = agreement(&cells, &block, &models);
        println!(
            "{:>3}G: feasibility {}/{} cells match, Galvatron dominance {}/{}, \
             geomean throughput ratio ours/paper {:.2}",
            a.budget_gb,
            a.feasibility_matches,
            a.cells,
            a.dominance_matches,
            a.dominance_cells,
            a.geomean_ratio
        );
    }

    let path = write_json("table4", &cells).expect("write results");
    eprintln!("wrote {}", path.display());

    if let Some(path) = metrics_out {
        write_metrics_snapshot(&path, &registry, false);
        eprintln!("wrote metrics snapshot to {path}");
    }
}
