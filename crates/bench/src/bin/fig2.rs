//! Regenerates Figure 2: the decision trees for 8 GPUs under each PP degree
//! and the candidate hybrid strategies they denote — 34 in total, 22 after
//! *Takeaway #3* prunes the DP⋅SDP mixtures.

use galvatron_bench::render::write_json;
use galvatron_strategy::tree::total_candidates_across_pp;
use galvatron_strategy::DecisionTreeBuilder;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PpBlock {
    pp_degree: usize,
    leaves: usize,
    raw_candidates: usize,
    pruned_candidates: usize,
    strategies: Vec<String>,
}

fn main() {
    let n = 8usize;
    let mut blocks = Vec::new();
    let mut pp = 1usize;
    while pp <= n {
        let leaves = n / pp;
        let raw = DecisionTreeBuilder::new(leaves)
            .with_takeaway3(false)
            .strategies();
        let pruned = DecisionTreeBuilder::new(leaves).strategies();
        println!(
            "=== {pp}-way PP → trees with {leaves} leaves: {} candidates \
             ({} before Takeaway #3) ===",
            pruned.len(),
            raw.len()
        );
        for tree in DecisionTreeBuilder::new(leaves).trees() {
            for line in tree.render().lines() {
                println!("    {line}");
            }
        }
        blocks.push(PpBlock {
            pp_degree: pp,
            leaves,
            raw_candidates: raw.len(),
            pruned_candidates: pruned.len(),
            strategies: pruned.iter().map(|s| s.label()).collect(),
        });
        pp *= 2;
    }

    let raw_total = total_candidates_across_pp(n, false);
    let pruned_total = total_candidates_across_pp(n, true);
    println!(
        "\ntotal: {raw_total} candidate hybrid strategies across all trees, \
         {pruned_total} after Takeaway #3 (paper: 34 → 22)"
    );
    assert_eq!((raw_total, pruned_total), (34, 22));

    let path = write_json("fig2", &blocks).expect("write results");
    eprintln!("wrote {}", path.display());
}
