//! `galvatron-elastic` — the elastic recovery sweep.
//!
//! Runs the acceptance demo (Fig. 4 BERT on the 8-GPU testbed, two devices
//! killed mid-run) and a fault-scenario sweep over the Table-2 model zoo,
//! then writes `results/elastic_recovery.json`.
//!
//! Flags:
//!
//! * `--jobs N` — planner worker threads (default: all cores),
//! * `--trace-out PATH` — additionally write a Chrome-trace JSON of one
//!   post-recovery iteration of the demo (load in Perfetto),
//! * `--metrics-out PATH` — write the run's metrics-registry snapshot as
//!   JSON. The *deterministic* view is written (wall-clock latencies
//!   dropped), so two runs with the same schedule and `--jobs 1` produce
//!   byte-identical files.

use galvatron_bench::{jobs_from_args, metrics_out_from_args, write_json, write_metrics_snapshot};
use galvatron_cluster::{rtx_titan_node, GIB};
use galvatron_core::OptimizerConfig;
use galvatron_elastic::{
    ElasticConfig, ElasticError, ElasticOutcome, ElasticRuntime, FaultEvent, FaultKind,
    FaultSchedule,
};
use galvatron_model::{BertConfig, ModelSpec, PaperModel};
use galvatron_obs::{MetricsRegistry, NullSink, Obs};
use galvatron_planner::{PlanRequest, PlanService, PlannerConfig};
use galvatron_sim::{to_chrome_trace_named, Simulator};
use serde::Serialize;
use std::sync::Arc;

const BUDGET_GB: u64 = 16;
const MAX_BATCH: usize = 32;
const TOTAL_STEPS: usize = 40;

fn planner_config(jobs: usize) -> PlannerConfig {
    PlannerConfig {
        optimizer: OptimizerConfig {
            max_batch: MAX_BATCH,
            ..OptimizerConfig::default()
        },
        jobs,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    }
}

fn elastic_config(jobs: usize) -> ElasticConfig {
    ElasticConfig {
        total_steps: TOTAL_STEPS,
        planner: planner_config(jobs),
        ..ElasticConfig::new(BUDGET_GB * GIB)
    }
}

/// The Figure-4 BERT workload (hidden 1280, 20 heads, seq 512).
fn fig4_bert(layers: usize) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build(&format!("BERT-{layers}"))
}

/// Kill devices 6 and 7 at step 20 — the acceptance demo schedule.
fn demo_schedule() -> FaultSchedule {
    FaultSchedule::new(vec![
        FaultEvent {
            step: 20,
            kind: FaultKind::DeviceLoss { device: 6 },
        },
        FaultEvent {
            step: 20,
            kind: FaultKind::DeviceLoss { device: 7 },
        },
    ])
}

fn scenarios() -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("loss2", demo_schedule()),
        (
            "straggler",
            FaultSchedule::new(vec![FaultEvent {
                step: 12,
                kind: FaultKind::Straggler {
                    device: 3,
                    slowdown: 2.5,
                },
            }]),
        ),
        (
            "link",
            FaultSchedule::new(vec![FaultEvent {
                step: 12,
                kind: FaultKind::LinkDegrade {
                    level: 0,
                    factor: 0.35,
                },
            }]),
        ),
    ]
}

#[derive(Serialize)]
struct DemoRecord {
    outcome: ElasticOutcome,
    replan_bit_identical: bool,
    goodput_vs_scratch: f64,
}

#[derive(Serialize)]
struct ScenarioRecord {
    model: String,
    scenario: String,
    outcome: Option<ElasticOutcome>,
    error: Option<String>,
}

#[derive(Serialize)]
struct Report {
    testbed: String,
    budget_gb: u64,
    max_batch: usize,
    total_steps: usize,
    demo: DemoRecord,
    scenarios: Vec<ScenarioRecord>,
}

fn trace_out_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(path.to_string());
        }
    }
    None
}

fn main() {
    let jobs = jobs_from_args();
    let trace_out = trace_out_from_args();
    let metrics_out = metrics_out_from_args();
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::new(registry.clone(), Arc::new(NullSink));
    let topology = rtx_titan_node(8);
    let config = elastic_config(jobs);
    let runtime = ElasticRuntime::new(config.clone()).with_obs(obs.clone());

    // --- Acceptance demo: Fig. 4 BERT, kill 2 of 8 devices. -------------
    let demo_model = fig4_bert(8);
    let outcome = runtime
        .run(&demo_model, &topology, &demo_schedule())
        .expect("the demo scenario recovers");
    let scratch = PlanService::new(planner_config(jobs))
        .submit(&PlanRequest {
            name: "scratch".into(),
            model: demo_model.clone(),
            topology: outcome.final_topology.clone(),
            budget_bytes: config.budget_bytes,
        })
        .expect("scratch planning succeeds")
        .outcome
        .expect("feasible on the survivors");
    let replan_bit_identical = outcome.final_plan.plan == scratch.plan;
    let sim = Simulator::new(
        outcome.final_topology.clone(),
        config.sim.clone().with_budget(config.budget_bytes),
    );
    let scratch_report = sim
        .execute(&demo_model, &scratch.plan)
        .expect("scratch plan executes");
    let goodput_vs_scratch = outcome.goodput.after.unwrap_or(0.0) / scratch_report.throughput;

    println!(
        "Elastic recovery demo: {} on 8× RTX TITAN, kill {{6,7}} at step 20",
        demo_model.name
    );
    println!(
        "  plan {} → {} | detect {:.2}s, replan {:.2}s (charged), migrate {:.3}s, {} steps lost",
        outcome.initial.summary,
        outcome.final_plan.summary,
        outcome.recoveries[0].time_to_detect,
        outcome.recoveries[0].replan_charge_seconds,
        outcome.recoveries[0].time_to_migrate,
        outcome.recoveries[0].steps_lost,
    );
    println!(
        "  goodput before/during/after: {:.1} / {:.1} / {:.1} samples/s",
        outcome.goodput.before.unwrap_or(0.0),
        outcome.goodput.during.unwrap_or(0.0),
        outcome.goodput.after.unwrap_or(0.0),
    );
    println!(
        "  re-plan bit-identical to scratch: {replan_bit_identical} | post-recovery goodput = {:.4}× scratch",
        goodput_vs_scratch
    );
    assert!(
        replan_bit_identical,
        "online re-plan must match from-scratch"
    );
    assert!(
        (goodput_vs_scratch - 1.0).abs() < 0.01,
        "post-recovery goodput must be within 1% of the from-scratch plan"
    );

    if let Some(path) = trace_out {
        let (_, entries) = sim
            .execute_traced(&demo_model, &outcome.final_plan.plan)
            .expect("traced execution succeeds");
        let label = format!("{} post-recovery (6 devices)", demo_model.name);
        std::fs::write(&path, to_chrome_trace_named(&entries, &label))
            .expect("trace file is writable");
        println!("  wrote Chrome trace to {path}");
    }

    let demo = DemoRecord {
        outcome,
        replan_bit_identical,
        goodput_vs_scratch,
    };

    // --- Fault sweep over the Table-2 zoo. ------------------------------
    println!();
    println!(
        "{:<14} {:<10} {:>5} {:>9} {:>9} {:>9} {:>8} {:>8} {:>6}",
        "model", "scenario", "surv", "before", "during", "after", "detect", "migrate", "lost"
    );
    let mut records = Vec::new();
    for preset in PaperModel::ALL {
        let model = preset.spec();
        for (name, schedule) in scenarios() {
            match runtime.run(&model, &topology, &schedule) {
                Ok(outcome) => {
                    let r = outcome.recoveries.first();
                    println!(
                        "{:<14} {:<10} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>8} {:>6}",
                        preset.name(),
                        name,
                        outcome.final_plan.devices,
                        outcome.goodput.before.unwrap_or(0.0),
                        outcome.goodput.during.unwrap_or(0.0),
                        outcome.goodput.after.unwrap_or(0.0),
                        r.map_or("-".into(), |r| format!("{:.2}s", r.time_to_detect)),
                        r.map_or("-".into(), |r| format!("{:.3}s", r.time_to_migrate)),
                        r.map_or("-".into(), |r| r.steps_lost.to_string()),
                    );
                    records.push(ScenarioRecord {
                        model: preset.name().to_string(),
                        scenario: name.to_string(),
                        outcome: Some(outcome),
                        error: None,
                    });
                }
                Err(e @ ElasticError::NoFeasiblePlan { .. }) => {
                    // xHuge models need more than 8 GPUs at this budget.
                    println!("{:<14} {:<10} infeasible: {e}", preset.name(), name);
                    records.push(ScenarioRecord {
                        model: preset.name().to_string(),
                        scenario: name.to_string(),
                        outcome: None,
                        error: Some(e.to_string()),
                    });
                }
                Err(e) => panic!("{}/{name}: {e}", preset.name()),
            }
        }
    }

    let report = Report {
        testbed: "rtx_titan_node(8)".to_string(),
        budget_gb: BUDGET_GB,
        max_batch: MAX_BATCH,
        total_steps: TOTAL_STEPS,
        demo,
        scenarios: records,
    };
    let path = write_json("elastic_recovery", &report).expect("results/ is writable");
    println!();
    println!("wrote {}", path.display());

    if let Some(path) = metrics_out {
        write_metrics_snapshot(&path, &registry, true);
        println!("wrote deterministic metrics snapshot to {path}");
    }
}
