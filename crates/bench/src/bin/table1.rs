//! Regenerates Table 1: 8-GPU end-to-end comparison under 8/12/16/20 GB
//! memory budgets, 8 models × 8 strategies.
//!
//! Every cell is planned by the corresponding baseline planner and
//! *measured* by the discrete-event simulator. Prints the table, the
//! paper's values, and per-block agreement statistics.

use galvatron_bench::paper;
use galvatron_bench::render::{agreement, render_cells, write_json};
use galvatron_bench::{
    evaluate_table_observed, jobs_from_args, metrics_out_from_args, resolve_jobs,
    write_metrics_snapshot, TableSpec,
};
use galvatron_cluster::TestbedPreset;
use galvatron_core::OptimizerConfig;
use galvatron_obs::{MetricsRegistry, NullSink, Obs};
use std::sync::Arc;

fn main() {
    let jobs = jobs_from_args();
    let metrics_out = metrics_out_from_args();
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::new(registry.clone(), Arc::new(NullSink));
    let budgets = vec![8u32, 12, 16, 20];
    let models = paper::TABLE1_MODELS.to_vec();
    let spec = TableSpec {
        name: "table1",
        topology: TestbedPreset::RtxTitan8.topology(),
        budgets_gb: budgets.clone(),
        models: models.clone(),
        config: OptimizerConfig {
            max_batch: 512,
            ..OptimizerConfig::default()
        },
    };
    eprintln!(
        "table1: evaluating {} cells on {} threads...",
        budgets.len() * models.len() * 8,
        resolve_jobs(jobs)
    );
    let started = std::time::Instant::now();
    let cells = evaluate_table_observed(&spec, jobs, &obs);
    eprintln!("table1: done in {:.1}s", started.elapsed().as_secs_f64());

    println!("{}", render_cells(&cells, &models, &budgets));

    println!("--- paper-vs-measured agreement ---");
    for block in paper::table1() {
        let a = agreement(&cells, &block, &models);
        println!(
            "{:>3}G: feasibility {}/{} cells match, Galvatron dominance {}/{}, \
             geomean throughput ratio ours/paper {:.2}",
            a.budget_gb,
            a.feasibility_matches,
            a.cells,
            a.dominance_matches,
            a.dominance_cells,
            a.geomean_ratio
        );
    }

    let path = write_json("table1", &cells).expect("write results");
    eprintln!("wrote {}", path.display());

    let snap = registry.snapshot();
    eprintln!(
        "table1: planner evaluated {} DP cells, pruned {} candidates, cache {}h/{}m",
        snap.counter("planner_dp_cells_evaluated").unwrap_or(0),
        snap.counter("planner_candidates_pruned").unwrap_or(0),
        snap.counter("dp_cache_hits").unwrap_or(0),
        snap.counter("dp_cache_misses").unwrap_or(0),
    );
    if let Some(path) = metrics_out {
        write_metrics_snapshot(&path, &registry, false);
        eprintln!("wrote metrics snapshot to {path}");
    }
}
