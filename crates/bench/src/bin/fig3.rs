//! Regenerates Figure 3: cost-estimation error with and without modeling
//! the compute/communication overlap slowdown.
//!
//! For every Table-1 model we take each feasible baseline plan at 16 GB,
//! "measure" it on the simulator (which applies per-task contention and
//! kernel noise), and compare against the estimator's predicted iteration
//! time in both configurations. The paper reports <5% average error with
//! the slowdown modelled and >15% (systematic under-prediction) without.

use galvatron_baselines::{BaselinePlanner, BaselineStrategy};
use galvatron_bench::render::write_json;
use galvatron_cluster::{TestbedPreset, GIB};
use galvatron_core::OptimizerConfig;
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::PaperModel;
use galvatron_sim::{Simulator, SimulatorConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModelError {
    model: String,
    plans: usize,
    mean_abs_err_with_overlap: f64,
    mean_abs_err_without_overlap: f64,
    mean_signed_err_without_overlap: f64,
}

fn main() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let budget = 16 * GIB;
    let config = OptimizerConfig {
        max_batch: 256,
        ..OptimizerConfig::default()
    };
    let planner = BaselinePlanner::new(topology.clone(), config);
    // The prediction side includes PP boundary transfers (the planner's DP
    // excludes them per §3.3, but the estimator can price them).
    let cfg_with = EstimatorConfig {
        include_boundary_comm: true,
        ..EstimatorConfig::default()
    };
    let cfg_without = EstimatorConfig {
        include_boundary_comm: true,
        ..EstimatorConfig::without_overlap_modeling()
    };
    let est_with = CostEstimator::new(topology.clone(), cfg_with);
    let est_without = CostEstimator::new(topology.clone(), cfg_without);
    let sim = Simulator::new(topology.clone(), SimulatorConfig::default());

    let mut rows = Vec::new();
    println!(
        "{:<14} {:>6} {:>22} {:>24}",
        "Model", "plans", "err w/ overlap (%)", "err w/o overlap (%)"
    );
    for m in PaperModel::TABLE1 {
        let model = m.spec();
        let mut errs_with = Vec::new();
        let mut errs_without = Vec::new();
        let mut signed_without = Vec::new();
        for strategy in BaselineStrategy::ALL {
            let Ok(Some(outcome)) = planner.plan(strategy, &model, budget) else {
                continue;
            };
            let measured = sim
                .execute(&model, &outcome.plan)
                .expect("plan simulates")
                .iteration_time;
            let with = est_with
                .plan_cost(&model, &outcome.plan)
                .expect("estimate")
                .iteration_time;
            let without = est_without
                .plan_cost(&model, &outcome.plan)
                .expect("estimate")
                .iteration_time;
            errs_with.push(((with - measured) / measured).abs());
            errs_without.push(((without - measured) / measured).abs());
            signed_without.push((without - measured) / measured);
        }
        let mean = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len().max(1) as f64;
        let row = ModelError {
            model: m.name().to_string(),
            plans: errs_with.len(),
            mean_abs_err_with_overlap: mean(&errs_with),
            mean_abs_err_without_overlap: mean(&errs_without),
            mean_signed_err_without_overlap: mean(&signed_without),
        };
        println!(
            "{:<14} {:>6} {:>21.2}% {:>22.2}%  (signed {:+.2}%)",
            row.model,
            row.plans,
            row.mean_abs_err_with_overlap,
            row.mean_abs_err_without_overlap,
            row.mean_signed_err_without_overlap
        );
        rows.push(row);
    }

    let avg_with = rows
        .iter()
        .map(|r| r.mean_abs_err_with_overlap)
        .sum::<f64>()
        / rows.len() as f64;
    let avg_without = rows
        .iter()
        .map(|r| r.mean_abs_err_without_overlap)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "\naverage: {avg_with:.2}% with overlap modeling vs {avg_without:.2}% without \
         (paper: <5% vs >15%)"
    );

    let path = write_json("fig3", &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
