//! Regenerates Figure 4: optimization (search) efficiency.
//!
//! (a) Search time of the Eq. 1 dynamic program as the number of layers and
//!     the memory budget grow — linear in both, as the paper observes.
//! (b) Search time against the strategy-space size: the limited-dimension
//!     searches (DP+TP, DP+PP) against full Galvatron on 8 GPUs.

use galvatron_bench::render::write_json;
use galvatron_bench::{
    jobs_from_args, metrics_out_from_args, resolve_jobs, write_metrics_snapshot,
};
use galvatron_cluster::{rtx_titan_node, GIB, MIB};
use galvatron_core::{dp_search, OptimizerConfig};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::BertConfig;
use galvatron_obs::{MetricsRegistry, NullSink, Obs};
use galvatron_planner::{ParallelPlanner, PlannerConfig};
use galvatron_strategy::{DecisionTreeBuilder, Paradigm};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScalePoint {
    layers: usize,
    budget_gb: u32,
    dp_millis: f64,
}

#[derive(Debug, Serialize)]
struct SpacePoint {
    variant: String,
    candidate_strategies: usize,
    search_millis: f64,
}

fn bert(layers: usize) -> galvatron_model::ModelSpec {
    BertConfig {
        layers,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build(&format!("BERT-{layers}"))
}

fn main() {
    let jobs = jobs_from_args();
    let metrics_out = metrics_out_from_args();
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::new(registry.clone(), Arc::new(NullSink));
    let topology = rtx_titan_node(8);
    let estimator = CostEstimator::new(topology.clone(), EstimatorConfig::default());
    let set = DecisionTreeBuilder::new(8).strategies();

    // --- (a) layers × memory scaling -----------------------------------
    println!("Figure 4(a): Eq.1 DP search time (ms)");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "layers", "8G", "12G", "16G", "20G"
    );
    let mut scale = Vec::new();
    for layers in [8usize, 16, 24, 32, 40, 48, 56, 64] {
        let model = bert(layers);
        print!("{layers:<8}");
        for budget_gb in [8u32, 12, 16, 20] {
            let usable = topology.usable_budget(budget_gb as u64 * GIB);
            let started = Instant::now();
            let _ = dp_search(
                &estimator,
                &model,
                0..model.n_layers(),
                0,
                &set,
                16,
                usable,
                32 * MIB,
            )
            .expect("search succeeds");
            let ms = started.elapsed().as_secs_f64() * 1e3;
            print!(" {ms:>7.1}");
            scale.push(ScalePoint {
                layers,
                budget_gb,
                dp_millis: ms,
            });
        }
        println!();
    }

    // Linearity check: time(64 layers) / time(8 layers) ≈ 8 at fixed budget.
    let t8: f64 = scale
        .iter()
        .filter(|p| p.layers == 8 && p.budget_gb == 16)
        .map(|p| p.dp_millis)
        .sum();
    let t64: f64 = scale
        .iter()
        .filter(|p| p.layers == 64 && p.budget_gb == 16)
        .map(|p| p.dp_millis)
        .sum();
    println!("\nlinearity: t(64)/t(8) = {:.1} (ideal 8.0)", t64 / t8);

    // --- (b) strategy-space size ----------------------------------------
    println!(
        "\nFigure 4(b): full-search time vs strategy-space size (8 GPUs, {} workers)",
        resolve_jobs(jobs)
    );
    let model = bert(32);
    let mut space = Vec::new();
    let variants: [(&str, OptimizerConfig); 3] = [
        (
            "Galvatron (DP+TP)",
            OptimizerConfig {
                paradigms: vec![Paradigm::Data, Paradigm::Tensor],
                allow_pipeline: false,
                max_batch: 64,
                ..OptimizerConfig::default()
            },
        ),
        (
            "Galvatron (DP+PP)",
            OptimizerConfig {
                paradigms: vec![Paradigm::Data],
                max_batch: 64,
                ..OptimizerConfig::default()
            },
        ),
        (
            "Galvatron (full)",
            OptimizerConfig {
                max_batch: 64,
                ..OptimizerConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let planner = ParallelPlanner::new(PlannerConfig {
            optimizer: cfg,
            jobs,
            use_cache: true,
            prune: true,
            incremental: true,
            cache_max_entries: None,
            intern_max_entries: None,
        })
        .with_obs(obs.clone());
        let started = Instant::now();
        let outcome = planner
            .optimize(&model, &topology, 16 * GIB)
            .expect("search succeeds")
            .expect("feasible");
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let candidates: usize = outcome
            .stats
            .strategy_set_sizes
            .iter()
            .map(|&(_, n)| n)
            .sum();
        println!("{name:<20} |S| = {candidates:>3}  search {ms:>8.1} ms");
        space.push(SpacePoint {
            variant: name.to_string(),
            candidate_strategies: candidates,
            search_millis: ms,
        });
    }
    println!(
        "(paper: DP+TP and DP+PP each have 4 alternatives, Galvatron 22; our DP+TP \
         counts axis orderings, hence 6)"
    );

    let path = write_json("fig4", &(scale, space)).expect("write results");
    eprintln!("wrote {}", path.display());

    if let Some(path) = metrics_out {
        write_metrics_snapshot(&path, &registry, false);
        eprintln!("wrote metrics snapshot to {path}");
    }
}
