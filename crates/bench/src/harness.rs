//! Cell evaluation: plan with the baseline planner, *measure* with the
//! simulator — the same separation the paper's evaluation has between the
//! planner's estimates and real execution.

use galvatron_baselines::{optimizer_config_for, BaselinePlanner, BaselineStrategy};
use galvatron_cluster::{ClusterTopology, GIB};
use galvatron_core::OptimizerConfig;
use galvatron_model::{ModelSpec, PaperModel};
use galvatron_obs::Obs;
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use galvatron_sim::{Simulator, SimulatorConfig};
use serde::{Deserialize, Serialize};

/// One table cell: a (strategy, model, budget) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Row label.
    pub strategy: String,
    /// Column label.
    pub model: String,
    /// Budget in GB.
    pub budget_gb: u32,
    /// Simulated throughput in samples/second; `None` = OOM.
    pub throughput: Option<f64>,
    /// The batch of the measured plan.
    pub batch: Option<usize>,
    /// The planner's own estimate (for Figure-3-style comparisons).
    pub estimated_throughput: Option<f64>,
    /// Compact plan description.
    pub plan: Option<String>,
}

impl CellResult {
    /// Table-cell rendering: `36.58 (56)` or `OOM`.
    pub fn display(&self) -> String {
        match (self.throughput, self.batch) {
            (Some(t), Some(b)) => format!("{t:.2} ({b})"),
            _ => "OOM".to_string(),
        }
    }
}

/// A table to regenerate: topology, budgets and model columns.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name ("table1", ...).
    pub name: &'static str,
    /// The cluster.
    pub topology: ClusterTopology,
    /// Budgets in GB (one block per budget).
    pub budgets_gb: Vec<u32>,
    /// Model columns.
    pub models: Vec<PaperModel>,
    /// Shared optimizer configuration.
    pub config: OptimizerConfig,
}

/// Evaluate one cell: search for the strategy's best plan under the budget,
/// then execute the plan on the simulator. If the simulated peak exceeds
/// the budget (estimator vs. simulator accounting can differ at the
/// margin), the batch is stepped down until it fits.
pub fn evaluate_cell(
    topology: &ClusterTopology,
    model: &ModelSpec,
    budget_gb: u32,
    strategy: BaselineStrategy,
    config: &OptimizerConfig,
) -> CellResult {
    evaluate_cell_cached(topology, model, budget_gb, strategy, config, None)
}

/// [`evaluate_cell`] with an optional shared stage-DP cache: the automatic
/// (Galvatron) rows are planned through `galvatron-planner`, reusing Eq. 1
/// solutions across cells; the fixed-shape rows keep the baseline sweep.
/// Planner workers are kept at 1 because the harness already parallelises
/// across cells.
pub fn evaluate_cell_cached(
    topology: &ClusterTopology,
    model: &ModelSpec,
    budget_gb: u32,
    strategy: BaselineStrategy,
    config: &OptimizerConfig,
    cache: Option<&DpCache>,
) -> CellResult {
    evaluate_cell_observed(
        topology,
        model,
        budget_gb,
        strategy,
        config,
        cache,
        &Obs::noop(),
    )
}

/// [`evaluate_cell_cached`] with a telemetry handle: the Galvatron rows'
/// planner records search counters (`planner_dp_cells_evaluated`,
/// `dp_cache_hits`, …) and `dp_search` spans into it; the simulator records
/// its own run metrics.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_cell_observed(
    topology: &ClusterTopology,
    model: &ModelSpec,
    budget_gb: u32,
    strategy: BaselineStrategy,
    config: &OptimizerConfig,
    cache: Option<&DpCache>,
    obs: &Obs,
) -> CellResult {
    let budget = budget_gb as u64 * GIB;
    let mut cfg = config.clone();
    let mut result = CellResult {
        strategy: strategy.label().to_string(),
        model: model.name.clone(),
        budget_gb,
        throughput: None,
        batch: None,
        estimated_throughput: None,
        plan: None,
    };

    loop {
        let planned = match optimizer_config_for(strategy, &cfg) {
            Some(optimizer) => {
                let planner = ParallelPlanner::new(PlannerConfig {
                    optimizer,
                    jobs: 1,
                    use_cache: cache.is_some(),
                    prune: true,
                    incremental: false,
                    cache_max_entries: None,
                    intern_max_entries: None,
                })
                .with_obs(obs.clone());
                match cache {
                    Some(cache) => planner.optimize_with_cache(model, topology, budget, cache),
                    None => planner.optimize(model, topology, budget),
                }
            }
            None => {
                BaselinePlanner::new(topology.clone(), cfg.clone()).plan(strategy, model, budget)
            }
        };
        let Ok(Some(outcome)) = planned else {
            return result;
        };
        let sim = Simulator::new(
            topology.clone(),
            SimulatorConfig::default().with_budget(budget),
        )
        .with_obs(obs.clone());
        match sim.execute(model, &outcome.plan) {
            Ok(report) if !report.oom => {
                result.throughput = Some(report.throughput);
                result.batch = Some(outcome.plan.global_batch);
                result.estimated_throughput = Some(outcome.throughput_samples_per_sec);
                result.plan = Some(outcome.plan.summary());
                return result;
            }
            Ok(_) | Err(_) => {
                // Step the batch cap below the failing plan and retry.
                let failing = outcome.plan.global_batch;
                if failing <= cfg.batch_step {
                    return result;
                }
                cfg.max_batch = failing - cfg.batch_step;
            }
        }
    }
}

/// Evaluate a whole table, parallelising across cells with the machine's
/// available parallelism.
pub fn evaluate_table(spec: &TableSpec) -> Vec<CellResult> {
    evaluate_table_with_jobs(spec, 0)
}

/// [`evaluate_table`] with an explicit worker count (`0` = all cores). All
/// cells share one stage-DP memoization cache, so the Galvatron rows of
/// different budgets and models reuse each other's Eq. 1 solutions.
pub fn evaluate_table_with_jobs(spec: &TableSpec, jobs: usize) -> Vec<CellResult> {
    evaluate_table_observed(spec, jobs, &Obs::noop())
}

/// [`evaluate_table_with_jobs`] with a telemetry handle shared by every
/// cell's planner and simulator: after the run, the handle's registry holds
/// the table-wide search totals (DP cells, cache hits/misses, pruned
/// candidates) that the `--metrics-out` flag of the table binaries dumps.
pub fn evaluate_table_observed(spec: &TableSpec, jobs: usize, obs: &Obs) -> Vec<CellResult> {
    let mut cells = Vec::new();
    for &budget in &spec.budgets_gb {
        for &model in &spec.models {
            for strategy in BaselineStrategy::ALL {
                cells.push((budget, model, strategy));
            }
        }
    }
    let n_threads = if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(cells.len().max(1));
    let cache = DpCache::new();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let out: parking_lot::Mutex<Vec<Option<CellResult>>> =
        parking_lot::Mutex::new((0..cells.len()).map(|_| None).collect());
    crossbeam::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let (budget, model, strategy) = cells[i];
                let cell = evaluate_cell_observed(
                    &spec.topology,
                    &model.spec(),
                    budget,
                    strategy,
                    &spec.config,
                    Some(&cache),
                    obs,
                );
                out.lock()[i] = Some(cell);
            });
        }
    })
    .expect("worker threads do not panic");
    out.into_inner()
        .into_iter()
        .map(|c| c.expect("all cells evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use galvatron_cluster::rtx_titan_node;

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            max_batch: 32,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn oom_cells_render_as_oom() {
        let topo = rtx_titan_node(8);
        let model = PaperModel::BertHuge32.spec();
        let cell = evaluate_cell(
            &topo,
            &model,
            8,
            BaselineStrategy::PyTorchDdp,
            &quick_config(),
        );
        assert_eq!(cell.display(), "OOM");
        assert!(cell.throughput.is_none());
    }

    #[test]
    fn feasible_cells_carry_measurements() {
        let topo = rtx_titan_node(8);
        let model = PaperModel::VitHuge32.spec();
        let cell = evaluate_cell(
            &topo,
            &model,
            16,
            BaselineStrategy::FsdpSdp,
            &quick_config(),
        );
        let t = cell.throughput.expect("SDP fits ViT at 16 GiB");
        assert!(t > 0.0);
        assert!(cell.display().contains('('));
        assert!(cell.estimated_throughput.is_some());
    }
}
