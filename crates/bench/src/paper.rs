//! The paper's reported numbers (Tables 1, 3 and 4), embedded for
//! paper-vs-measured agreement statistics.
//!
//! Cells are `Some((throughput_samples_per_sec, batch))` or `None` for OOM.
//! Row order matches [`BaselineStrategy::ALL`]; column order is the model
//! order given per table.

use galvatron_baselines::BaselineStrategy;
use galvatron_model::{BertConfig, ModelSpec, PaperModel};

/// A reported cell: `(throughput, batch)`, `None` = OOM.
pub type PaperCell = Option<(f64, u32)>;

/// One memory-budget block of a table: 8 strategy rows × model columns.
#[derive(Debug, Clone)]
pub struct PaperBlock {
    /// The budget in GB (the paper's "8G" etc.).
    pub budget_gb: u32,
    /// `rows[strategy][model]` in [`BaselineStrategy::ALL`] order.
    pub rows: [Vec<PaperCell>; 8],
}

/// Table 1 model columns.
pub const TABLE1_MODELS: [PaperModel; 8] = PaperModel::TABLE1;

/// Table 3 model columns.
pub const TABLE3_MODELS: [PaperModel; 4] = [
    PaperModel::BertHuge32,
    PaperModel::BertHuge48,
    PaperModel::VitHuge32,
    PaperModel::VitHuge48,
];

/// Table 4 model columns.
pub const TABLE4_MODELS: [PaperModel; 2] = [PaperModel::BertXHuge, PaperModel::VitXHuge];

/// Stage-layer count of [`scale_point_model`] (98 encoders plus the
/// embedding and head layers).
pub const SCALE_POINT_LAYERS: usize = 100;

/// The 64-GPU/100-layer cold-planning scaling point: a 100-layer
/// BERT-Huge stack planned on the Table-4 A100×64 testbed. Shared by the
/// planner-sweep bench, `bench_serve`, and the golden-plan suite so every
/// consumer pins the same instance.
pub fn scale_point_model() -> ModelSpec {
    let spec = BertConfig {
        layers: SCALE_POINT_LAYERS - 2,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build("bert-huge-98");
    debug_assert_eq!(spec.n_layers(), SCALE_POINT_LAYERS);
    spec
}

const fn c(t: f64, b: u32) -> PaperCell {
    Some((t, b))
}
const O: PaperCell = None;

/// Table 1: 8× RTX TITAN.
pub fn table1() -> Vec<PaperBlock> {
    vec![
        PaperBlock {
            budget_gb: 8,
            rows: [
                vec![O, O, O, O, O, O, O, O],
                vec![
                    O,
                    O,
                    c(16.16, 24),
                    c(10.65, 16),
                    O,
                    O,
                    c(13.47, 24),
                    c(8.41, 8),
                ],
                vec![
                    O,
                    O,
                    c(20.57, 56),
                    c(16.59, 32),
                    O,
                    O,
                    c(23.61, 40),
                    c(16.42, 24),
                ],
                vec![
                    c(4.65, 8),
                    O,
                    c(33.25, 64),
                    c(15.71, 40),
                    c(5.97, 8),
                    O,
                    c(24.86, 48),
                    c(11.92, 32),
                ],
                vec![
                    c(7.79, 8),
                    O,
                    c(30.56, 40),
                    c(14.59, 16),
                    c(8.12, 8),
                    O,
                    c(26.22, 32),
                    c(14.27, 16),
                ],
                vec![
                    O,
                    O,
                    c(29.4, 32),
                    c(15.76, 16),
                    O,
                    O,
                    c(26.18, 24),
                    c(14.76, 16),
                ],
                vec![
                    O,
                    O,
                    c(31.79, 48),
                    c(20.93, 24),
                    c(9.37, 8),
                    O,
                    c(27.18, 40),
                    c(17.71, 24),
                ],
                vec![
                    c(8.16, 8),
                    O,
                    c(36.58, 56),
                    c(20.93, 24),
                    c(9.37, 8),
                    O,
                    c(31.33, 48),
                    c(21.64, 32),
                ],
            ],
        },
        PaperBlock {
            budget_gb: 12,
            rows: [
                vec![O, O, c(14.22, 16), O, O, O, O, O],
                vec![
                    c(5.72, 8),
                    O,
                    c(16.71, 48),
                    c(10.99, 32),
                    c(5.14, 8),
                    O,
                    c(13.68, 40),
                    c(9.62, 24),
                ],
                vec![
                    c(9.22, 8),
                    c(6.2, 8),
                    c(25.13, 104),
                    c(16.62, 64),
                    c(9.09, 8),
                    c(6.83, 8),
                    c(26.07, 72),
                    c(19.82, 48),
                ],
                vec![
                    c(8.91, 16),
                    c(3.15, 8),
                    c(47.41, 112),
                    c(24.24, 72),
                    c(11.26, 16),
                    c(4.11, 8),
                    c(37.38, 88),
                    c(21.98, 64),
                ],
                vec![
                    c(7.79, 8),
                    c(5.35, 8),
                    c(37.88, 80),
                    c(22.68, 48),
                    c(8.12, 8),
                    c(5.76, 8),
                    c(34.14, 72),
                    c(20.07, 40),
                ],
                vec![
                    c(8.92, 8),
                    c(5.35, 8),
                    c(42.21, 64),
                    c(17.2, 32),
                    c(9.53, 8),
                    O,
                    c(37.26, 56),
                    c(20.18, 32),
                ],
                vec![
                    c(9.22, 8),
                    c(6.2, 8),
                    c(50.69, 72),
                    c(24.01, 56),
                    c(11.95, 16),
                    c(6.83, 8),
                    c(35.87, 56),
                    c(21.69, 48),
                ],
                vec![
                    c(11.39, 16),
                    c(6.2, 8),
                    c(50.69, 72),
                    c(26.63, 72),
                    c(14.49, 16),
                    c(6.83, 8),
                    c(41.69, 64),
                    c(25.42, 64),
                ],
            ],
        },
        PaperBlock {
            budget_gb: 16,
            rows: [
                vec![
                    c(6.39, 8),
                    O,
                    c(44.40, 64),
                    O,
                    c(7.79, 8),
                    O,
                    c(28.61, 40),
                    O,
                ],
                vec![
                    c(6.06, 16),
                    c(3.88, 8),
                    c(16.81, 72),
                    c(11.02, 40),
                    c(5.14, 8),
                    O,
                    c(13.83, 56),
                    c(9.71, 40),
                ],
                vec![
                    c(12.96, 16),
                    c(6.2, 8),
                    c(25.26, 144),
                    c(17.24, 96),
                    c(9.09, 8),
                    c(6.83, 8),
                    c(28.23, 104),
                    c(20.11, 64),
                ],
                vec![
                    c(12.47, 24),
                    c(6.06, 16),
                    c(59.93, 160),
                    c(32.15, 104),
                    c(14.95, 24),
                    c(7.16, 16),
                    c(49.68, 136),
                    c(26.46, 88),
                ],
                vec![
                    c(8.50, 16),
                    c(5.35, 8),
                    c(41.67, 128),
                    c(25.45, 72),
                    c(11.52, 16),
                    c(5.76, 8),
                    c(37.13, 104),
                    c(24.12, 64),
                ],
                vec![
                    c(12.59, 16),
                    c(6.19, 8),
                    c(46.02, 88),
                    c(23.97, 48),
                    c(14.52, 16),
                    c(6.84, 8),
                    c(44.65, 80),
                    c(26.51, 48),
                ],
                vec![
                    c(13.00, 16),
                    c(6.2, 8),
                    c(54.05, 120),
                    c(28.01, 56),
                    c(14.64, 16),
                    c(6.83, 8),
                    c(44.15, 96),
                    c(25.82, 56),
                ],
                vec![
                    c(15.05, 24),
                    c(7.46, 16),
                    c(63.25, 160),
                    c(35.74, 104),
                    c(16.50, 24),
                    c(8.36, 16),
                    c(54.06, 136),
                    c(29.21, 72),
                ],
            ],
        },
        PaperBlock {
            budget_gb: 20,
            rows: [
                vec![
                    c(11.57, 16),
                    O,
                    c(61.54, 112),
                    c(17.02, 32),
                    c(14.3, 16),
                    c(5.43, 8),
                    c(42.82, 80),
                    c(11.8, 24),
                ],
                vec![
                    c(6.06, 16),
                    c(3.88, 8),
                    c(16.11, 88),
                    c(11.02, 56),
                    c(5.47, 16),
                    c(3.55, 8),
                    c(13.84, 72),
                    c(9.79, 48),
                ],
                vec![
                    c(13.52, 24),
                    c(7.05, 16),
                    c(28.64, 192),
                    c(17.96, 128),
                    c(9.53, 16),
                    c(8.13, 16),
                    c(29.75, 128),
                    c(20.73, 88),
                ],
                vec![
                    c(17.06, 40),
                    c(7.8, 24),
                    c(63.75, 216),
                    c(38.29, 136),
                    c(17.93, 32),
                    c(7.16, 16),
                    c(55.22, 176),
                    c(32.63, 120),
                ],
                vec![
                    c(8.50, 16),
                    c(5.35, 8),
                    c(43.36, 168),
                    c(27.82, 104),
                    c(13.14, 24),
                    c(7.96, 16),
                    c(40.60, 136),
                    c(26.09, 96),
                ],
                vec![
                    c(14.65, 24),
                    c(8.05, 16),
                    c(61.54, 112),
                    c(28.69, 72),
                    c(15.35, 24),
                    c(6.84, 8),
                    c(54.87, 104),
                    c(30.59, 72),
                ],
                vec![
                    c(15.52, 24),
                    c(8.11, 16),
                    c(61.54, 112),
                    c(34.88, 96),
                    c(17.27, 24),
                    c(10.33, 16),
                    c(50.19, 136),
                    c(31.62, 80),
                ],
                vec![
                    c(18.21, 40),
                    c(8.95, 24),
                    c(70.5, 152),
                    c(41.2, 136),
                    c(18.64, 32),
                    c(10.33, 16),
                    c(60.06, 144),
                    c(37.75, 120),
                ],
            ],
        },
    ]
}

/// Table 3: 16× RTX TITAN over InfiniBand.
pub fn table3() -> Vec<PaperBlock> {
    vec![
        PaperBlock {
            budget_gb: 8,
            rows: [
                vec![O, O, O, O],
                vec![O, O, c(16.86, 32), c(10.86, 16)],
                vec![c(13.79, 16), c(5.88, 8), c(50.70, 128), c(27.96, 80)],
                vec![c(8.95, 16), c(6.12, 16), c(69.48, 128), c(34.92, 96)],
                vec![c(15.24, 16), c(6.43, 8), c(57.14, 64), c(29.92, 40)],
                vec![O, O, c(54.43, 64), c(24.56, 32)],
                vec![c(13.91, 16), c(5.88, 8), c(68.56, 128), c(35.02, 72)],
                vec![c(15.24, 16), c(8.43, 16), c(76.74, 128), c(38.32, 88)],
            ],
        },
        PaperBlock {
            budget_gb: 16,
            rows: [
                vec![c(12.14, 16), O, c(88.06, 128), O],
                vec![c(6.12, 16), c(4.23, 16), c(17.11, 64), c(11.26, 48)],
                vec![c(23.29, 40), c(12.92, 24), c(69.72, 320), c(50.23, 208)],
                vec![c(30.37, 64), c(11.74, 32), c(123.95, 320), c(61.49, 224)],
                vec![c(23.92, 48), c(13.03, 24), c(91.56, 256), c(53.81, 152)],
                vec![c(23.01, 32), c(10.50, 16), c(99.22, 160), c(49.82, 96)],
                vec![c(23.73, 40), c(13.12, 40), c(115.88, 224), c(61.38, 208)],
                vec![c(32.67, 64), c(14.74, 40), c(131.15, 320), c(72.74, 208)],
            ],
        },
    ]
}

/// Table 4: 64× A100.
pub fn table4() -> Vec<PaperBlock> {
    vec![
        PaperBlock {
            budget_gb: 16,
            rows: [
                vec![O, O],
                vec![c(0.68, 3), c(1.94, 12)],
                vec![c(9.74, 16), c(61.95, 96)],
                vec![O, O],
                vec![c(8.44, 16), c(64.91, 96)],
                vec![c(1.73, 4), c(5.07, 2)],
                vec![c(9.74, 16), c(64.83, 104)],
                vec![c(13.77, 24), c(68.35, 136)],
            ],
        },
        PaperBlock {
            budget_gb: 32,
            rows: [
                vec![O, O],
                vec![c(0.77, 7), c(2.11, 28)],
                vec![c(21.38, 48), c(94.84, 288)],
                vec![O, O],
                vec![c(21.28, 40), c(91.19, 256)],
                vec![c(1.73, 4), c(5.51, 68)],
                vec![c(23.64, 48), c(110.98, 232)],
                vec![c(27.49, 64), c(114.55, 328)],
            ],
        },
    ]
}

/// The paper cell for `(block, strategy, model-column)`.
pub fn cell(block: &PaperBlock, strategy: BaselineStrategy, column: usize) -> PaperCell {
    let row = BaselineStrategy::ALL
        .iter()
        .position(|&s| s == strategy)
        .expect("known strategy");
    block.rows[row][column]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_consistent_shapes() {
        for block in table1() {
            for row in &block.rows {
                assert_eq!(row.len(), TABLE1_MODELS.len());
            }
        }
        for block in table3() {
            for row in &block.rows {
                assert_eq!(row.len(), TABLE3_MODELS.len());
            }
        }
        for block in table4() {
            for row in &block.rows {
                assert_eq!(row.len(), TABLE4_MODELS.len());
            }
        }
    }

    #[test]
    fn galvatron_wins_or_ties_every_paper_cell() {
        // The property our reproduction must preserve.
        for table in [table1(), table3(), table4()] {
            for block in table {
                let galvatron = &block.rows[7];
                for (ri, row) in block.rows.iter().enumerate().take(7) {
                    for (ci, cell) in row.iter().enumerate() {
                        if let (Some((t, _)), Some((g, _))) = (cell, galvatron[ci]) {
                            assert!(
                                g >= *t - 1e-9,
                                "row {ri} col {ci} @{}G: {t} > {g}",
                                block.budget_gb
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn headline_speedups_are_present_in_the_data() {
        // §5.2: ViT throughput improves "by up to 338%" over single
        // strategies and up to 55% over hybrid ones.
        let t1 = table1();
        let b20 = &t1[3];
        let vit32 = 2usize;
        let (tp, _) = cell(b20, BaselineStrategy::MegatronTp, vit32).unwrap();
        let (galv, _) = cell(b20, BaselineStrategy::GalvatronFull, vit32).unwrap();
        assert!(galv / tp > 4.3, "338% speedup over TP: {}", galv / tp);
    }
}
