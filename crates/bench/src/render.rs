//! Table rendering and JSON result dumps.

use crate::harness::CellResult;
use crate::paper::{PaperBlock, PaperCell};
use galvatron_baselines::BaselineStrategy;
use galvatron_model::PaperModel;
use serde::Serialize;
use std::fs;
use std::path::Path;

/// Render one table of cells (grouped by budget, rows = strategies,
/// columns = models) in the paper's layout.
pub fn render_cells(cells: &[CellResult], models: &[PaperModel], budgets_gb: &[u32]) -> String {
    let mut out = String::new();
    let col_width = 18usize;
    for &budget in budgets_gb {
        out.push_str(&format!("\n=== {budget}G ===\n"));
        out.push_str(&format!("{:<22}", "Strategy"));
        for m in models {
            out.push_str(&format!("{:>col_width$}", m.name()));
        }
        out.push('\n');
        for strategy in BaselineStrategy::ALL {
            out.push_str(&format!("{:<22}", strategy.label()));
            for m in models {
                let cell = cells
                    .iter()
                    .find(|c| {
                        c.budget_gb == budget
                            && c.model == m.name()
                            && c.strategy == strategy.label()
                    })
                    .map(|c| c.display())
                    .unwrap_or_else(|| "-".to_string());
                out.push_str(&format!("{cell:>col_width$}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Agreement statistics against the paper's numbers for one budget block.
#[derive(Debug, Clone, Serialize)]
pub struct BlockAgreement {
    /// Budget in GB.
    pub budget_gb: u32,
    /// Cells where feasibility (OOM vs. runs) matches the paper.
    pub feasibility_matches: usize,
    /// Total cells compared.
    pub cells: usize,
    /// Cells (both feasible) where the winner column-wise is preserved —
    /// i.e. Galvatron's measured throughput ≥ this row's, matching the
    /// paper's bolding.
    pub dominance_matches: usize,
    /// Dominance comparisons made.
    pub dominance_cells: usize,
    /// Geometric-mean ratio ours/paper over mutually feasible cells.
    pub geomean_ratio: f64,
}

/// Compare measured cells against a paper block.
pub fn agreement(
    cells: &[CellResult],
    block: &PaperBlock,
    models: &[PaperModel],
) -> BlockAgreement {
    let mut feas = 0usize;
    let mut total = 0usize;
    let mut log_ratio_sum = 0.0f64;
    let mut ratio_n = 0usize;
    let mut dom_match = 0usize;
    let mut dom_total = 0usize;

    let find = |strategy: BaselineStrategy, model: PaperModel| -> Option<&CellResult> {
        cells.iter().find(|c| {
            c.budget_gb == block.budget_gb
                && c.model == model.name()
                && c.strategy == strategy.label()
        })
    };

    for (ci, &model) in models.iter().enumerate() {
        let ours_galv = find(BaselineStrategy::GalvatronFull, model).and_then(|c| c.throughput);
        for (ri, strategy) in BaselineStrategy::ALL.iter().enumerate() {
            let paper: PaperCell = block.rows[ri][ci];
            let ours = find(*strategy, model);
            total += 1;
            let ours_t = ours.and_then(|c| c.throughput);
            if paper.is_some() == ours_t.is_some() {
                feas += 1;
            }
            if let (Some((pt, _)), Some(ot)) = (paper, ours_t) {
                log_ratio_sum += (ot / pt).ln();
                ratio_n += 1;
            }
            // Dominance: Galvatron ≥ baseline, measured, wherever the paper
            // reports both.
            if ri < 7 {
                if let (Some(_), Some(ot), Some(g)) = (paper, ours_t, ours_galv) {
                    dom_total += 1;
                    if g >= ot * 0.995 {
                        dom_match += 1;
                    }
                }
            }
        }
    }

    BlockAgreement {
        budget_gb: block.budget_gb,
        feasibility_matches: feas,
        cells: total,
        dominance_matches: dom_match,
        dominance_cells: dom_total,
        geomean_ratio: if ratio_n > 0 {
            (log_ratio_sum / ratio_n as f64).exp()
        } else {
            f64::NAN
        },
    }
}

/// Write any serialisable result under `results/<name>.json` (created next
/// to the workspace root or the current directory).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

fn results_dir() -> std::path::PathBuf {
    // Prefer the workspace root (where Cargo.toml with [workspace] lives).
    let mut dir = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    loop {
        if dir.join("Cargo.toml").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return Path::new("results").to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(strategy: BaselineStrategy, model: PaperModel, t: Option<f64>) -> CellResult {
        CellResult {
            strategy: strategy.label().to_string(),
            model: model.name().to_string(),
            budget_gb: 8,
            throughput: t,
            batch: t.map(|_| 8),
            estimated_throughput: t,
            plan: None,
        }
    }

    #[test]
    fn render_includes_oom_and_values() {
        let cells = vec![
            cell(BaselineStrategy::PyTorchDdp, PaperModel::VitHuge32, None),
            cell(
                BaselineStrategy::GalvatronFull,
                PaperModel::VitHuge32,
                Some(36.58),
            ),
        ];
        let s = render_cells(&cells, &[PaperModel::VitHuge32], &[8]);
        assert!(s.contains("OOM"));
        assert!(s.contains("36.58 (8)"));
        assert!(s.contains("=== 8G ==="));
    }

    #[test]
    fn agreement_counts_feasibility() {
        let block = crate::paper::table1().remove(0); // 8G
        let models = [PaperModel::VitHuge32];
        // One correct OOM (DDP), one correct feasible (Galvatron).
        let mut cells = vec![
            cell(BaselineStrategy::PyTorchDdp, PaperModel::VitHuge32, None),
            cell(
                BaselineStrategy::GalvatronFull,
                PaperModel::VitHuge32,
                Some(40.0),
            ),
        ];
        // Model column index 2 in TABLE1 is ViT-Huge-32, but agreement()
        // receives the caller's column list, so build a matching block.
        let vit_col = 2usize;
        let rows: Vec<Vec<PaperCell>> = block.rows.iter().map(|r| vec![r[vit_col]]).collect();
        let block1 = PaperBlock {
            budget_gb: 8,
            rows: rows.try_into().unwrap(),
        };
        for s in BaselineStrategy::ALL.iter().skip(1).take(6) {
            cells.push(cell(*s, PaperModel::VitHuge32, Some(30.0)));
        }
        let a = agreement(&cells, &block1, &models);
        assert_eq!(a.cells, 8);
        assert!(a.feasibility_matches >= 6);
        assert!(a.geomean_ratio.is_finite());
        assert_eq!(a.dominance_matches, a.dominance_cells);
    }
}
