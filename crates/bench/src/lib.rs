//! The benchmark harness: regenerates every table and figure of the paper.
//!
//! Binaries (`cargo run -p galvatron-bench --release --bin <name>`):
//!
//! * `table1` — 8-GPU end-to-end comparison (4 memory budgets × 8 models ×
//!   8 strategies),
//! * `table2` — model statistics,
//! * `table3` — 16-GPU comparison, `table4` — 64-GPU comparison,
//! * `fig3`  — estimation error with/without overlap-slowdown modeling,
//! * `fig4`  — search-time scaling (layers × memory; strategy-space size),
//! * `fig5`  — the optimal plans for BERT-Huge-32 / Swin-Huge-32 at
//!   8 GB / 12 GB,
//! * `galvatron-elastic` — the elastic recovery sweep: fault scenarios
//!   (device loss / straggler / link degradation) over the zoo, with the
//!   kill-2-devices acceptance demo (`--trace-out` dumps a Chrome trace).
//!
//! Each binary prints the table and writes machine-readable JSON under
//! `results/`. Where the paper reports numbers, [`paper`] embeds them so
//! the binaries can print paper-vs-measured agreement statistics
//! (EXPERIMENTS.md is generated from these).

#![warn(missing_docs)]

pub mod harness;
pub mod paper;
pub mod render;

pub use harness::{
    evaluate_cell, evaluate_cell_cached, evaluate_table, evaluate_table_with_jobs, CellResult,
    TableSpec,
};
pub use render::{render_cells, write_json};

/// Parse `--jobs N` (or `--jobs=N`) from the process arguments. `0` — the
/// default when the flag is absent or malformed — means the machine's
/// available parallelism.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = arg.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    0
}

/// The worker count `jobs` resolves to (`0` → all cores).
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
