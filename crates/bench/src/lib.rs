//! The benchmark harness: regenerates every table and figure of the paper.
//!
//! Binaries (`cargo run -p galvatron-bench --release --bin <name>`):
//!
//! * `table1` — 8-GPU end-to-end comparison (4 memory budgets × 8 models ×
//!   8 strategies),
//! * `table2` — model statistics,
//! * `table3` — 16-GPU comparison, `table4` — 64-GPU comparison,
//! * `fig3`  — estimation error with/without overlap-slowdown modeling,
//! * `fig4`  — search-time scaling (layers × memory; strategy-space size),
//! * `fig5`  — the optimal plans for BERT-Huge-32 / Swin-Huge-32 at
//!   8 GB / 12 GB,
//! * `galvatron-elastic` — the elastic recovery sweep: fault scenarios
//!   (device loss / straggler / link degradation) over the zoo, with the
//!   kill-2-devices acceptance demo (`--trace-out` dumps a Chrome trace).
//!
//! Each binary prints the table and writes machine-readable JSON under
//! `results/`. Where the paper reports numbers, [`paper`] embeds them so
//! the binaries can print paper-vs-measured agreement statistics
//! (EXPERIMENTS.md is generated from these).
//!
//! `table1`/`table3`/`table4`/`fig4`/`galvatron-elastic` additionally take
//! `--metrics-out PATH` to dump the run's telemetry-registry snapshot
//! (planner DP-cell counts, cache hit rates, prune counts, …) as JSON; the
//! elastic binary writes the deterministic view, so two runs with the same
//! seed produce byte-identical files.

#![warn(missing_docs)]

pub mod harness;
pub mod paper;
pub mod render;

pub use harness::{
    evaluate_cell, evaluate_cell_cached, evaluate_cell_observed, evaluate_table,
    evaluate_table_observed, evaluate_table_with_jobs, CellResult, TableSpec,
};
pub use render::{render_cells, write_json};

/// Parse `--jobs N` (or `--jobs=N`) from the process arguments. `0` — the
/// default when the flag is absent or malformed — means the machine's
/// available parallelism.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = arg.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    0
}

/// The worker count `jobs` resolves to (`0` → all cores).
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse `--metrics-out PATH` (or `--metrics-out=PATH`) from the process
/// arguments: where the binary should write its metrics-registry snapshot
/// as JSON. `None` when the flag is absent.
pub fn metrics_out_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--metrics-out" {
            return args.next();
        }
        if let Some(path) = arg.strip_prefix("--metrics-out=") {
            return Some(path.to_string());
        }
    }
    None
}

/// Write the registry's snapshot to `path` as JSON.
///
/// `deterministic` drops wall-clock (volatile) metrics first — the view the
/// elastic demo uses so two seeded runs produce byte-identical files.
pub fn write_metrics_snapshot(
    path: &str,
    registry: &galvatron_obs::MetricsRegistry,
    deterministic: bool,
) {
    let snapshot = if deterministic {
        registry.snapshot().deterministic()
    } else {
        registry.snapshot()
    };
    std::fs::write(path, snapshot.to_json()).expect("metrics path is writable");
}
