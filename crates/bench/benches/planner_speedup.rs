//! Benchmarks the parallel planning engine against the serial Algorithm-1
//! optimizer on the Figure 4 BERT workload: jobs ∈ {1, 2, 4, 8} with the
//! shared DP cache on and off, plus the warm-shared-cache path the plan
//! service exercises. After the Criterion groups run, a single-shot sweep
//! is timed per configuration and written to
//! `results/planner_speedup.json` so the measured speedup lands next to
//! the other regenerated artifacts.
//!
//! Two speedup sources compose here and the report separates them:
//! feasibility pre-screening + bound-based pruning cut the number of full
//! DP solves (core-count-independent), and the work-stealing sweep spreads
//! the surviving solves over `jobs` threads (scales with physical cores —
//! flat on a single-core host).

use criterion::{criterion_group, BenchmarkId, Criterion};
use galvatron_bench::render::write_json;
use galvatron_cluster::{rtx_titan_node, ClusterTopology, GIB};
use galvatron_core::{GalvatronOptimizer, OptimizerConfig};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const JOBS: [usize; 4] = [1, 2, 4, 8];

fn bert(layers: usize) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build(&format!("BERT-{layers}"))
}

fn config() -> OptimizerConfig {
    OptimizerConfig {
        max_batch: 64,
        ..OptimizerConfig::default()
    }
}

fn planner(jobs: usize, use_cache: bool) -> ParallelPlanner {
    ParallelPlanner::new(PlannerConfig {
        optimizer: config(),
        jobs,
        use_cache,
        prune: true,
        incremental: false,
        cache_max_entries: None,
        intern_max_entries: None,
    })
}

fn bench_jobs(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = bert(32);

    let mut group = c.benchmark_group("planner_speedup/serial");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    let serial = GalvatronOptimizer::new(config());
    group.bench_function("optimizer", |b| {
        b.iter(|| {
            serial
                .optimize(black_box(&model), &topology, 16 * GIB)
                .unwrap()
        })
    });
    group.finish();

    for use_cache in [false, true] {
        let mut group = c.benchmark_group(if use_cache {
            "planner_speedup/cached"
        } else {
            "planner_speedup/uncached"
        });
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(3));
        group.sample_size(10);
        for jobs in JOBS {
            let planner = planner(jobs, use_cache);
            group.bench_with_input(BenchmarkId::from_parameter(jobs), &planner, |b, planner| {
                b.iter(|| {
                    planner
                        .optimize(black_box(&model), &topology, 16 * GIB)
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

#[derive(Debug, Serialize)]
struct SpeedupPoint {
    configuration: String,
    jobs: usize,
    cache: bool,
    seconds: f64,
    speedup_vs_serial: f64,
    pruned_candidates: usize,
    dp_invocations: usize,
    cache_hit_rate: Option<f64>,
}

fn timed<F: FnMut() -> galvatron_core::OptimizeOutcome>(
    mut f: F,
) -> (f64, galvatron_core::OptimizeOutcome) {
    const REPS: usize = 3;
    let started = Instant::now();
    let mut out = f();
    for _ in 1..REPS {
        out = f();
    }
    (started.elapsed().as_secs_f64() / REPS as f64, out)
}

/// One timed configuration sweep against the serial Algorithm-1 baseline.
/// Also asserts every parallel plan matches the serial one — a regression
/// here means the speedup numbers are comparing different searches.
fn write_speedup_table(topology: &ClusterTopology, model: &ModelSpec) {
    let serial = GalvatronOptimizer::new(config());
    let (serial_secs, baseline) = timed(|| {
        serial
            .optimize(model, topology, 16 * GIB)
            .expect("search succeeds")
            .expect("feasible")
    });

    let mut points = Vec::new();
    let mut record = |configuration: &str,
                      jobs: usize,
                      cache: bool,
                      seconds: f64,
                      outcome: &galvatron_core::OptimizeOutcome| {
        assert_eq!(
            outcome.plan, baseline.plan,
            "{configuration} (jobs={jobs}) diverged from the serial optimizer"
        );
        points.push(SpeedupPoint {
            configuration: configuration.to_string(),
            jobs,
            cache,
            seconds,
            speedup_vs_serial: serial_secs / seconds,
            pruned_candidates: outcome.stats.pruned_candidates,
            dp_invocations: outcome.stats.dp_invocations,
            cache_hit_rate: outcome.stats.cache_hit_rate(),
        });
    };

    for use_cache in [false, true] {
        for jobs in JOBS {
            let planner = planner(jobs, use_cache);
            let (seconds, outcome) = timed(|| {
                planner
                    .optimize(model, topology, 16 * GIB)
                    .expect("search succeeds")
                    .expect("feasible")
            });
            record("cold", jobs, use_cache, seconds, &outcome);
        }
    }

    // The plan-service path: repeated requests against one shared cache.
    let planner = planner(4, true);
    let cache = DpCache::new();
    planner
        .optimize_with_cache(model, topology, 16 * GIB, &cache)
        .expect("search succeeds");
    let (seconds, outcome) = timed(|| {
        planner
            .optimize_with_cache(model, topology, 16 * GIB, &cache)
            .expect("search succeeds")
            .expect("feasible")
    });
    record("warm-shared-cache", 4, true, seconds, &outcome);

    println!("\nplanner_speedup: single-shot sweep (serial optimizer {serial_secs:.3}s)");
    for p in &points {
        println!(
            "  {:<17} jobs={} cache={:<5} {:.3}s  ({:.2}x, {} pruned, {} DP solves)",
            p.configuration,
            p.jobs,
            p.cache,
            p.seconds,
            p.speedup_vs_serial,
            p.pruned_candidates,
            p.dp_invocations
        );
    }
    let path = write_json("planner_speedup", &points).expect("write results");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_jobs);

fn main() {
    benches();
    write_speedup_table(&rtx_titan_node(8), &bert(32));
}
