//! Simulator micro-benchmarks: graph construction and execution rates for
//! representative plan shapes. The Table-1/3/4 harness runs hundreds of
//! simulations; these benches keep that tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use galvatron_cluster::rtx_titan_node;
use galvatron_core::PipelinePartitioner;
use galvatron_model::{ModelSpec, PaperModel};
use galvatron_sim::{builder::build_iteration_graph, Simulator, SimulatorConfig};
use galvatron_strategy::{IntraStageStrategy, Paradigm, ParallelPlan, StagePlan};
use std::hint::black_box;

fn dp_plan(model: &ModelSpec, batch: usize) -> ParallelPlan {
    ParallelPlan::uniform(
        "dp8",
        model.n_layers(),
        8,
        IntraStageStrategy::pure(Paradigm::Data, 8).unwrap(),
        batch,
    )
}

fn pp_plan(model: &ModelSpec, batch: usize, micro_batches: usize) -> ParallelPlan {
    let bounds = PipelinePartitioner::ByLayerCount.partition(model, 8);
    let stages = bounds
        .iter()
        .enumerate()
        .map(|(i, &(start, end))| StagePlan {
            layer_start: start,
            layer_end: end,
            device_base: i,
            device_count: 1,
            layer_strategies: vec![IntraStageStrategy::single_device(); end - start],
            layer_recompute: Vec::new(),
        })
        .collect();
    ParallelPlan {
        origin: "pp8".into(),
        global_batch: batch,
        micro_batches,
        schedule: Default::default(),
        stages,
    }
}

fn bench_graph_build(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let config = SimulatorConfig::default();
    let model = PaperModel::BertHuge32.spec();
    let plans = [
        ("dp8_b32", dp_plan(&model, 32)),
        ("pp8_b32_m8", pp_plan(&model, 32, 8)),
        ("pp8_b64_m32", pp_plan(&model, 64, 32)),
    ];
    let mut group = c.benchmark_group("sim/build_graph");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, plan) in &plans {
        group.bench_function(*name, |b| {
            b.iter(|| build_iteration_graph(black_box(&model), plan, &topology, &config).unwrap())
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = PaperModel::BertHuge32.spec();
    let plans = [
        ("dp8_b32", dp_plan(&model, 32)),
        ("pp8_b32_m8", pp_plan(&model, 32, 8)),
        ("pp8_b64_m32", pp_plan(&model, 64, 32)),
    ];
    let mut group = c.benchmark_group("sim/execute");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, plan) in &plans {
        let sim = Simulator::new(topology.clone(), SimulatorConfig::default());
        let tasks = sim.execute(&model, plan).unwrap().task_count;
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), plan, |b, plan| {
            b.iter(|| sim.execute(black_box(&model), plan).unwrap())
        });
    }
    group.finish();
}

fn bench_traced_execution(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = PaperModel::VitHuge32.spec();
    let plan = pp_plan(&model, 64, 16);
    let sim = Simulator::new(topology, SimulatorConfig::default());
    c.bench_function("sim/execute_traced_pp8", |b| {
        b.iter(|| sim.execute_traced(black_box(&model), &plan).unwrap())
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_execution,
    bench_traced_execution
);
criterion_main!(benches);
