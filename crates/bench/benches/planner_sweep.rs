//! The incremental-DP sweep benchmark: Algorithm 1's Table-1 study (the
//! paper's 8-GPU testbed, every Table-1 model × the 8/12/16/20 GB budget
//! grid) planned three ways —
//!
//! * `serial` — the serial [`GalvatronOptimizer`], one independent search
//!   per point (the pre-incremental baseline);
//! * `incremental-cold` — the same sweep through the production stack
//!   (planner + arena DP + shared [`DpCache`] + shared
//!   [`IncrementalEngine`]), starting from empty reuse structures;
//! * `incremental-warm` — the same sweep again against the now-warm
//!   structures, i.e. what a plan service or an elastic re-planner pays for
//!   a repeated study.
//!
//! A second, single-point scaling study plans the 100-layer BERT stack on
//! the Table-4 A100×64 testbed (`serial-64gpu-100l` vs
//! `arena-cold-64gpu-100l`) to pin cold-path behaviour at depth and scale.
//!
//! Every point's plan is asserted byte-identical to the serial baseline
//! (the bench *fails* on divergence — this is the CI gate `scripts/check.sh`
//! relies on), a Table-4 spot check pins the 64-GPU path too, and the
//! timings land in `BENCH_planner_sweep.json` at the workspace root. Each
//! pass is timed as a min-of-N (the robust estimator on a shared host) and
//! the run *fails* — not warns — when the cold sweep drops below
//! [`COLD_SPEEDUP_FLOOR`], when the scale point drops below
//! [`SCALE_COLD_SPEEDUP_FLOOR`], or when the warm sweep drops below
//! [`WARM_SPEEDUP_FLOOR`]. The measurement deliberately does not rely on
//! multi-core work stealing (`jobs = 1`).

use criterion::{criterion_group, Criterion};
use galvatron_bench::paper::{scale_point_model, SCALE_POINT_LAYERS};
use galvatron_cluster::{TestbedPreset, GIB};
use galvatron_core::{GalvatronOptimizer, IncrementalEngine, OptimizeOutcome, OptimizerConfig};
use galvatron_model::PaperModel;
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const BUDGETS_GIB: [u64; 4] = [8, 12, 16, 20];
/// The warm pass must beat serial by at least this factor.
const WARM_SPEEDUP_FLOOR: f64 = 1.5;
/// The cold pass must beat serial by at least this factor. This is the
/// arena-DP rebuild's acceptance bar: dropping below it fails the bench.
const COLD_SPEEDUP_FLOOR: f64 = 10.0;
/// The 64-GPU/100-layer cold scale point must beat its serial baseline by
/// at least this factor.
const SCALE_COLD_SPEEDUP_FLOOR: f64 = 5.0;
/// Min-of-N repetitions per timed pass (minimum is the robust location
/// estimator under one-sided scheduler noise on a shared host).
const SERIAL_REPS: usize = 2;
const COLD_REPS: usize = 3;
const WARM_REPS: usize = 3;

fn config() -> OptimizerConfig {
    // max_batch 32 keeps the smoke sweep quick; the reuse structure is the
    // same at the paper's 512 cap, just with more batch points.
    OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    }
}

fn planner() -> ParallelPlanner {
    ParallelPlanner::new(PlannerConfig {
        optimizer: config(),
        jobs: 1,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    })
}

/// All Table-1 points, in study order.
fn sweep_points() -> Vec<(PaperModel, u64)> {
    let mut points = Vec::new();
    for &budget in &BUDGETS_GIB {
        for model in PaperModel::TABLE1 {
            points.push((model, budget));
        }
    }
    points
}

fn assert_same(
    baseline: &Option<OptimizeOutcome>,
    candidate: &Option<OptimizeOutcome>,
    what: &str,
) {
    match (baseline, candidate) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.plan, b.plan, "{what}: plan diverged from serial");
            assert_eq!(
                a.throughput_samples_per_sec.to_bits(),
                b.throughput_samples_per_sec.to_bits(),
                "{what}: throughput diverged from serial"
            );
            assert_eq!(
                a.iteration_time.to_bits(),
                b.iteration_time.to_bits(),
                "{what}: iteration time diverged from serial"
            );
        }
        (a, b) => panic!(
            "{what}: feasibility diverged (serial {}, incremental {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

#[derive(Debug, Default, Serialize)]
struct SweepRow {
    configuration: String,
    seconds: f64,
    speedup_vs_serial: f64,
    reps: usize,
    points: usize,
    feasible_points: usize,
    cache_hits: usize,
    cache_misses: usize,
    intern_hits: usize,
    intern_misses: usize,
    ledger_hits: usize,
    warm_start_prunes: usize,
    arena_solves: usize,
    dominated_pruned: usize,
}

#[derive(Debug, Serialize)]
struct SweepReport {
    testbed: String,
    models: Vec<String>,
    budgets_gib: Vec<u64>,
    max_batch: usize,
    speedup_floor: f64,
    cold_speedup_floor: f64,
    scale_testbed: String,
    scale_model: String,
    scale_layers: usize,
    scale_cold_speedup_floor: f64,
    rows: Vec<SweepRow>,
}

/// Find the workspace root (the directory whose Cargo.toml declares the
/// workspace) so the artifact lands at a stable path regardless of where
/// cargo runs the bench from.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn run_table1_sweep() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let points = sweep_points();

    // Serial baseline: one independent Algorithm-1 search per point,
    // timed min-of-N.
    let serial = GalvatronOptimizer::new(config());
    let mut baseline: Vec<Option<OptimizeOutcome>> = Vec::new();
    let mut serial_secs = f64::INFINITY;
    for rep in 0..SERIAL_REPS {
        let started = Instant::now();
        let outcomes: Vec<Option<OptimizeOutcome>> = points
            .iter()
            .map(|&(model, budget)| {
                serial
                    .optimize(&model.spec(), &topology, budget * GIB)
                    .expect("well-formed testbed")
            })
            .collect();
        serial_secs = serial_secs.min(started.elapsed().as_secs_f64());
        if rep == 0 {
            baseline = outcomes;
        }
    }
    let feasible = baseline.iter().filter(|o| o.is_some()).count();

    let planner = planner();
    let mut rows = vec![SweepRow {
        configuration: "serial".to_string(),
        seconds: serial_secs,
        speedup_vs_serial: 1.0,
        reps: SERIAL_REPS,
        points: points.len(),
        feasible_points: feasible,
        ..SweepRow::default()
    }];

    // Cold pass: fresh reuse structures per repetition (each rep is a true
    // cold start); the last repetition's structures feed the warm pass.
    let mut cold_secs = f64::INFINITY;
    let mut cold_row = SweepRow::default();
    let mut warm_structures = None;
    for _ in 0..COLD_REPS {
        let cache = DpCache::new();
        let engine = IncrementalEngine::new();
        let started = Instant::now();
        let outcomes: Vec<Option<OptimizeOutcome>> = points
            .iter()
            .map(|&(model, budget)| {
                planner
                    .optimize_with_reuse(
                        &model.spec(),
                        &topology,
                        budget * GIB,
                        Some(&cache),
                        Some(&engine),
                    )
                    .expect("well-formed testbed")
            })
            .collect();
        cold_secs = cold_secs.min(started.elapsed().as_secs_f64());
        for (i, (outcome, reference)) in outcomes.iter().zip(&baseline).enumerate() {
            let (model, budget) = points[i];
            assert_same(
                reference,
                outcome,
                &format!("incremental-cold: {} @ {budget}G", model.name()),
            );
        }
        let cache_delta = cache.counters();
        let engine_delta = engine.counters();
        cold_row = SweepRow {
            configuration: "incremental-cold".to_string(),
            seconds: cold_secs,
            speedup_vs_serial: serial_secs / cold_secs,
            reps: COLD_REPS,
            points: points.len(),
            feasible_points: outcomes.iter().filter(|o| o.is_some()).count(),
            cache_hits: cache_delta.hits,
            cache_misses: cache_delta.misses,
            intern_hits: engine_delta.intern_hits,
            intern_misses: engine_delta.intern_misses,
            ledger_hits: engine_delta.ledger_hits,
            warm_start_prunes: engine_delta.warm_start_prunes,
            arena_solves: engine_delta.arena_solves,
            dominated_pruned: engine_delta.dominated_pruned,
        };
        warm_structures = Some((cache, engine));
    }
    rows.push(cold_row);

    // Warm pass against the retained structures.
    let (cache, engine) = warm_structures.expect("cold pass ran");
    let mut warm_secs = f64::INFINITY;
    let mut warm_row = SweepRow::default();
    for rep in 0..WARM_REPS {
        let cache_before = cache.counters();
        let engine_before = engine.counters();
        let started = Instant::now();
        let outcomes: Vec<Option<OptimizeOutcome>> = points
            .iter()
            .map(|&(model, budget)| {
                planner
                    .optimize_with_reuse(
                        &model.spec(),
                        &topology,
                        budget * GIB,
                        Some(&cache),
                        Some(&engine),
                    )
                    .expect("well-formed testbed")
            })
            .collect();
        warm_secs = warm_secs.min(started.elapsed().as_secs_f64());
        for (i, (outcome, reference)) in outcomes.iter().zip(&baseline).enumerate() {
            let (model, budget) = points[i];
            assert_same(
                reference,
                outcome,
                &format!("incremental-warm: {} @ {budget}G", model.name()),
            );
        }
        if rep == 0 {
            let cache_delta = cache.counters().since(&cache_before);
            let engine_delta = engine.counters().since(&engine_before);
            warm_row = SweepRow {
                configuration: "incremental-warm".to_string(),
                seconds: warm_secs,
                speedup_vs_serial: serial_secs / warm_secs,
                reps: WARM_REPS,
                points: points.len(),
                feasible_points: outcomes.iter().filter(|o| o.is_some()).count(),
                cache_hits: cache_delta.hits,
                cache_misses: cache_delta.misses,
                intern_hits: engine_delta.intern_hits,
                intern_misses: engine_delta.intern_misses,
                ledger_hits: engine_delta.ledger_hits,
                warm_start_prunes: engine_delta.warm_start_prunes,
                arena_solves: engine_delta.arena_solves,
                dominated_pruned: engine_delta.dominated_pruned,
            };
        }
    }
    warm_row.seconds = warm_secs;
    warm_row.speedup_vs_serial = serial_secs / warm_secs;
    rows.push(warm_row);

    // The 64-GPU/100-layer cold scaling point: one deep model on the
    // Table-4 A100×64 testbed, serial vs a true cold planner start.
    let a100 = TestbedPreset::A100x64.topology();
    let scale_model = scale_point_model();
    let mut scale_serial_secs = f64::INFINITY;
    let mut scale_baseline = None;
    for rep in 0..SERIAL_REPS {
        let started = Instant::now();
        let outcome = serial
            .optimize(&scale_model, &a100, 16 * GIB)
            .expect("well-formed testbed");
        scale_serial_secs = scale_serial_secs.min(started.elapsed().as_secs_f64());
        if rep == 0 {
            scale_baseline = Some(outcome);
        }
    }
    let scale_baseline = scale_baseline.expect("serial scale pass ran");
    rows.push(SweepRow {
        configuration: "serial-64gpu-100l".to_string(),
        seconds: scale_serial_secs,
        speedup_vs_serial: 1.0,
        reps: SERIAL_REPS,
        points: 1,
        feasible_points: scale_baseline.is_some() as usize,
        ..SweepRow::default()
    });
    let mut scale_cold_secs = f64::INFINITY;
    let mut scale_row = SweepRow::default();
    for _ in 0..COLD_REPS {
        let cache = DpCache::new();
        let engine = IncrementalEngine::new();
        let started = Instant::now();
        let outcome = planner
            .optimize_with_reuse(&scale_model, &a100, 16 * GIB, Some(&cache), Some(&engine))
            .expect("well-formed testbed");
        scale_cold_secs = scale_cold_secs.min(started.elapsed().as_secs_f64());
        assert_same(
            &scale_baseline,
            &outcome,
            &format!("arena-cold-64gpu-100l: {} @ 16G", scale_model.name),
        );
        let cache_delta = cache.counters();
        let engine_delta = engine.counters();
        scale_row = SweepRow {
            configuration: "arena-cold-64gpu-100l".to_string(),
            seconds: scale_cold_secs,
            speedup_vs_serial: scale_serial_secs / scale_cold_secs,
            reps: COLD_REPS,
            points: 1,
            feasible_points: outcome.is_some() as usize,
            cache_hits: cache_delta.hits,
            cache_misses: cache_delta.misses,
            intern_hits: engine_delta.intern_hits,
            intern_misses: engine_delta.intern_misses,
            ledger_hits: engine_delta.ledger_hits,
            warm_start_prunes: engine_delta.warm_start_prunes,
            arena_solves: engine_delta.arena_solves,
            dominated_pruned: engine_delta.dominated_pruned,
        };
    }
    rows.push(scale_row);

    // Table-4 spot check: the 64-GPU A100 path must agree with the serial
    // optimizer through the incremental stack too (equality only — the
    // timing study is above).
    let cache = DpCache::new();
    let engine = IncrementalEngine::new();
    for model in galvatron_bench::paper::TABLE4_MODELS {
        let spec = model.spec();
        let reference = serial
            .optimize(&spec, &a100, 16 * GIB)
            .expect("well-formed");
        let candidate = planner
            .optimize_with_reuse(&spec, &a100, 16 * GIB, Some(&cache), Some(&engine))
            .expect("well-formed");
        assert_same(
            &reference,
            &candidate,
            &format!("table4: {} @ 16G", model.name()),
        );
    }

    println!(
        "\nplanner_sweep: Table-1 study ({} points, serial {serial_secs:.3}s) + \
         64-GPU/{SCALE_POINT_LAYERS}-layer scale point (serial {scale_serial_secs:.3}s)",
        points.len()
    );
    for row in &rows {
        println!(
            "  {:<21} {:.3}s  ({:.2}x; cache {}h/{}m, intern {}h/{}m, {} ledger hits, \
             {} arena solves, {} dominated)",
            row.configuration,
            row.seconds,
            row.speedup_vs_serial,
            row.cache_hits,
            row.cache_misses,
            row.intern_hits,
            row.intern_misses,
            row.ledger_hits,
            row.arena_solves,
            row.dominated_pruned,
        );
    }

    let report = SweepReport {
        testbed: "rtx-titan-8".to_string(),
        models: PaperModel::TABLE1
            .iter()
            .map(|m| m.name().to_string())
            .collect(),
        budgets_gib: BUDGETS_GIB.to_vec(),
        max_batch: config().max_batch,
        speedup_floor: WARM_SPEEDUP_FLOOR,
        cold_speedup_floor: COLD_SPEEDUP_FLOOR,
        scale_testbed: "a100-64".to_string(),
        scale_model: scale_model.name.clone(),
        scale_layers: SCALE_POINT_LAYERS,
        scale_cold_speedup_floor: SCALE_COLD_SPEEDUP_FLOOR,
        rows,
    };
    let path = workspace_root().join("BENCH_planner_sweep.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_planner_sweep.json");
    eprintln!("wrote {}", path.display());

    let row = |name: &str| {
        report
            .rows
            .iter()
            .find(|r| r.configuration == name)
            .unwrap_or_else(|| panic!("{name} row recorded"))
    };
    let cold = row("incremental-cold");
    assert!(
        cold.speedup_vs_serial >= COLD_SPEEDUP_FLOOR,
        "cold sweep must be ≥{COLD_SPEEDUP_FLOOR}× the serial baseline, \
         measured {:.2}×",
        cold.speedup_vs_serial
    );
    let scale = row("arena-cold-64gpu-100l");
    assert!(
        scale.speedup_vs_serial >= SCALE_COLD_SPEEDUP_FLOOR,
        "64-GPU/{SCALE_POINT_LAYERS}-layer cold point must be \
         ≥{SCALE_COLD_SPEEDUP_FLOOR}× its serial baseline, measured {:.2}×",
        scale.speedup_vs_serial
    );
    let warm = row("incremental-warm");
    assert!(
        warm.speedup_vs_serial >= WARM_SPEEDUP_FLOOR,
        "warm incremental sweep must be ≥{WARM_SPEEDUP_FLOOR}× the serial baseline, \
         measured {:.2}×",
        warm.speedup_vs_serial
    );
}

fn bench_sweep_point(c: &mut Criterion) {
    // Criterion smoke: one representative point, serial vs incremental-warm,
    // so the harness tracks per-search latency over time.
    let topology = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();

    let mut group = c.benchmark_group("planner_sweep");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    let serial = GalvatronOptimizer::new(config());
    group.bench_function("serial", |b| {
        b.iter(|| {
            serial
                .optimize(black_box(&model), &topology, 16 * GIB)
                .unwrap()
        })
    });

    let planner = planner();
    let cache = DpCache::new();
    let engine = IncrementalEngine::new();
    planner
        .optimize_with_reuse(&model, &topology, 16 * GIB, Some(&cache), Some(&engine))
        .unwrap();
    group.bench_function("incremental-warm", |b| {
        b.iter(|| {
            planner
                .optimize_with_reuse(
                    black_box(&model),
                    &topology,
                    16 * GIB,
                    Some(&cache),
                    Some(&engine),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_point);

fn main() {
    benches();
    run_table1_sweep();
}
