//! The incremental-DP sweep benchmark: Algorithm 1's Table-1 study (the
//! paper's 8-GPU testbed, every Table-1 model × the 8/12/16/20 GB budget
//! grid) planned three ways —
//!
//! * `serial` — the serial [`GalvatronOptimizer`], one independent search
//!   per point (the pre-incremental baseline);
//! * `incremental-cold` — the same sweep through the production stack
//!   (planner + shared [`DpCache`] + shared [`IncrementalEngine`]),
//!   starting from empty reuse structures;
//! * `incremental-warm` — the same sweep again against the now-warm
//!   structures, i.e. what a plan service or an elastic re-planner pays for
//!   a repeated study.
//!
//! Every point's plan is asserted byte-identical to the serial baseline
//! (the bench *fails* on divergence — this is the CI gate `scripts/check.sh`
//! relies on), a Table-4 spot check pins the 64-GPU path too, and the
//! timings land in `BENCH_planner_sweep.json` at the workspace root. The
//! run asserts the warm incremental sweep is ≥1.5× faster than the serial
//! baseline; on multi-core hosts the cold rows gain further from the
//! work-stealing sweep, which this single-shot measurement deliberately
//! does not rely on (`jobs = 1`).

use criterion::{criterion_group, Criterion};
use galvatron_cluster::{TestbedPreset, GIB};
use galvatron_core::{GalvatronOptimizer, IncrementalEngine, OptimizeOutcome, OptimizerConfig};
use galvatron_model::PaperModel;
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const BUDGETS_GIB: [u64; 4] = [8, 12, 16, 20];
const SPEEDUP_FLOOR: f64 = 1.5;

fn config() -> OptimizerConfig {
    // max_batch 32 keeps the smoke sweep quick; the reuse structure is the
    // same at the paper's 512 cap, just with more batch points.
    OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    }
}

fn planner() -> ParallelPlanner {
    ParallelPlanner::new(PlannerConfig {
        optimizer: config(),
        jobs: 1,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    })
}

/// All Table-1 points, in study order.
fn sweep_points() -> Vec<(PaperModel, u64)> {
    let mut points = Vec::new();
    for &budget in &BUDGETS_GIB {
        for model in PaperModel::TABLE1 {
            points.push((model, budget));
        }
    }
    points
}

fn assert_same(
    baseline: &Option<OptimizeOutcome>,
    candidate: &Option<OptimizeOutcome>,
    what: &str,
) {
    match (baseline, candidate) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.plan, b.plan, "{what}: plan diverged from serial");
            assert_eq!(
                a.throughput_samples_per_sec.to_bits(),
                b.throughput_samples_per_sec.to_bits(),
                "{what}: throughput diverged from serial"
            );
            assert_eq!(
                a.iteration_time.to_bits(),
                b.iteration_time.to_bits(),
                "{what}: iteration time diverged from serial"
            );
        }
        (a, b) => panic!(
            "{what}: feasibility diverged (serial {}, incremental {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

#[derive(Debug, Serialize)]
struct SweepRow {
    configuration: String,
    seconds: f64,
    speedup_vs_serial: f64,
    points: usize,
    feasible_points: usize,
    cache_hits: usize,
    cache_misses: usize,
    intern_hits: usize,
    intern_misses: usize,
    ledger_hits: usize,
    warm_start_prunes: usize,
}

#[derive(Debug, Serialize)]
struct SweepReport {
    testbed: String,
    models: Vec<String>,
    budgets_gib: Vec<u64>,
    max_batch: usize,
    speedup_floor: f64,
    rows: Vec<SweepRow>,
}

/// Find the workspace root (the directory whose Cargo.toml declares the
/// workspace) so the artifact lands at a stable path regardless of where
/// cargo runs the bench from.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn run_table1_sweep() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let points = sweep_points();

    // Serial baseline: one independent Algorithm-1 search per point.
    let serial = GalvatronOptimizer::new(config());
    let started = Instant::now();
    let baseline: Vec<Option<OptimizeOutcome>> = points
        .iter()
        .map(|&(model, budget)| {
            serial
                .optimize(&model.spec(), &topology, budget * GIB)
                .expect("well-formed testbed")
        })
        .collect();
    let serial_secs = started.elapsed().as_secs_f64();
    let feasible = baseline.iter().filter(|o| o.is_some()).count();

    let planner = planner();
    let cache = DpCache::new();
    let engine = IncrementalEngine::new();
    let mut rows = vec![SweepRow {
        configuration: "serial".to_string(),
        seconds: serial_secs,
        speedup_vs_serial: 1.0,
        points: points.len(),
        feasible_points: feasible,
        cache_hits: 0,
        cache_misses: 0,
        intern_hits: 0,
        intern_misses: 0,
        ledger_hits: 0,
        warm_start_prunes: 0,
    }];

    for pass in ["incremental-cold", "incremental-warm"] {
        let cache_before = cache.counters();
        let engine_before = engine.counters();
        let started = Instant::now();
        let outcomes: Vec<Option<OptimizeOutcome>> = points
            .iter()
            .map(|&(model, budget)| {
                planner
                    .optimize_with_reuse(
                        &model.spec(),
                        &topology,
                        budget * GIB,
                        Some(&cache),
                        Some(&engine),
                    )
                    .expect("well-formed testbed")
            })
            .collect();
        let seconds = started.elapsed().as_secs_f64();
        for (i, (outcome, reference)) in outcomes.iter().zip(&baseline).enumerate() {
            let (model, budget) = points[i];
            assert_same(
                reference,
                outcome,
                &format!("{pass}: {} @ {budget}G", model.name()),
            );
        }
        let cache_delta = cache.counters().since(&cache_before);
        let engine_delta = engine.counters().since(&engine_before);
        rows.push(SweepRow {
            configuration: pass.to_string(),
            seconds,
            speedup_vs_serial: serial_secs / seconds,
            points: points.len(),
            feasible_points: outcomes.iter().filter(|o| o.is_some()).count(),
            cache_hits: cache_delta.hits,
            cache_misses: cache_delta.misses,
            intern_hits: engine_delta.intern_hits,
            intern_misses: engine_delta.intern_misses,
            ledger_hits: engine_delta.ledger_hits,
            warm_start_prunes: engine_delta.warm_start_prunes,
        });
    }

    // Table-4 spot check: the 64-GPU A100 path must agree with the serial
    // optimizer through the incremental stack too (equality only — the
    // timing study is the 8-GPU sweep above).
    let a100 = TestbedPreset::A100x64.topology();
    for model in galvatron_bench::paper::TABLE4_MODELS {
        let spec = model.spec();
        let reference = serial
            .optimize(&spec, &a100, 16 * GIB)
            .expect("well-formed");
        let candidate = planner
            .optimize_with_reuse(&spec, &a100, 16 * GIB, Some(&cache), Some(&engine))
            .expect("well-formed");
        assert_same(
            &reference,
            &candidate,
            &format!("table4: {} @ 16G", model.name()),
        );
    }

    println!(
        "\nplanner_sweep: Table-1 study ({} points, serial {serial_secs:.3}s)",
        points.len()
    );
    for row in &rows {
        println!(
            "  {:<17} {:.3}s  ({:.2}x; cache {}h/{}m, intern {}h/{}m, {} ledger hits, {} warm prunes)",
            row.configuration,
            row.seconds,
            row.speedup_vs_serial,
            row.cache_hits,
            row.cache_misses,
            row.intern_hits,
            row.intern_misses,
            row.ledger_hits,
            row.warm_start_prunes,
        );
    }

    let report = SweepReport {
        testbed: "rtx-titan-8".to_string(),
        models: PaperModel::TABLE1
            .iter()
            .map(|m| m.name().to_string())
            .collect(),
        budgets_gib: BUDGETS_GIB.to_vec(),
        max_batch: config().max_batch,
        speedup_floor: SPEEDUP_FLOOR,
        rows,
    };
    let path = workspace_root().join("BENCH_planner_sweep.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_planner_sweep.json");
    eprintln!("wrote {}", path.display());

    let warm = report
        .rows
        .iter()
        .find(|r| r.configuration == "incremental-warm")
        .expect("warm row recorded");
    assert!(
        warm.speedup_vs_serial >= SPEEDUP_FLOOR,
        "warm incremental sweep must be ≥{SPEEDUP_FLOOR}× the serial baseline, \
         measured {:.2}×",
        warm.speedup_vs_serial
    );
}

fn bench_sweep_point(c: &mut Criterion) {
    // Criterion smoke: one representative point, serial vs incremental-warm,
    // so the harness tracks per-search latency over time.
    let topology = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();

    let mut group = c.benchmark_group("planner_sweep");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);

    let serial = GalvatronOptimizer::new(config());
    group.bench_function("serial", |b| {
        b.iter(|| {
            serial
                .optimize(black_box(&model), &topology, 16 * GIB)
                .unwrap()
        })
    });

    let planner = planner();
    let cache = DpCache::new();
    let engine = IncrementalEngine::new();
    planner
        .optimize_with_reuse(&model, &topology, 16 * GIB, Some(&cache), Some(&engine))
        .unwrap();
    group.bench_function("incremental-warm", |b| {
        b.iter(|| {
            planner
                .optimize_with_reuse(
                    black_box(&model),
                    &topology,
                    16 * GIB,
                    Some(&cache),
                    Some(&engine),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_point);

fn main() {
    benches();
    run_table1_sweep();
}
