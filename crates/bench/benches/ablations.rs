//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Takeaway #3 pruning** — search time over the 34-candidate raw space
//!   vs the 22-candidate pruned space (quality is asserted equal-or-near in
//!   the companion test below the bench functions).
//! * **Memory quantization granularity** — the §3.3 "large memory
//!   granularity" knob trading search time for fidelity.
//! * **Pipeline partitioner** — the load-balancing guideline used for
//!   stage cuts.
//! * **Communication-group pool** — warm pool lookups vs cold group
//!   construction (§4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use galvatron_cluster::collectives::all_reduce;
use galvatron_cluster::{
    rtx_titan_node, CollectiveAlgorithm, CommGroupPool, Link, LinkClass, GIB, MIB,
};
use galvatron_core::{GalvatronOptimizer, OptimizerConfig, PipelinePartitioner};
use galvatron_model::PaperModel;
use std::hint::black_box;

fn bench_takeaway3(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = PaperModel::SwinHuge32.spec();
    let mut group = c.benchmark_group("ablation/takeaway3");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, takeaway3) in [("pruned_22", true), ("raw_34", false)] {
        let optimizer = GalvatronOptimizer::new(OptimizerConfig {
            takeaway3,
            max_batch: 32,
            ..OptimizerConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| {
                optimizer
                    .optimize(black_box(&model), &topology, 12 * GIB)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_memory_granularity(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = PaperModel::BertHuge32.spec();
    let mut group = c.benchmark_group("ablation/memory_granularity_mib");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for granularity_mib in [8u64, 16, 64, 256] {
        let optimizer = GalvatronOptimizer::new(OptimizerConfig {
            memory_granularity: granularity_mib * MIB,
            max_batch: 32,
            ..OptimizerConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(granularity_mib),
            &optimizer,
            |b, optimizer| {
                b.iter(|| {
                    optimizer
                        .optimize(black_box(&model), &topology, 16 * GIB)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = PaperModel::SwinHuge48.spec();
    let mut group = c.benchmark_group("ablation/partitioner");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, partitioner) in [
        ("by_flops", PipelinePartitioner::ByFlops),
        ("by_params", PipelinePartitioner::ByParams),
        ("by_activation", PipelinePartitioner::ByActivation),
        ("by_layer_count", PipelinePartitioner::ByLayerCount),
    ] {
        let optimizer = GalvatronOptimizer::new(OptimizerConfig {
            partitioner,
            max_batch: 32,
            ..OptimizerConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| {
                optimizer
                    .optimize(black_box(&model), &topology, 12 * GIB)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_group_pool(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let groups: Vec<Vec<usize>> = (0..100usize)
        .filter_map(|i| {
            let stride = 1usize << (i % 3);
            let size = 2usize << (i % 2);
            let span = stride * (size - 1);
            if span >= 8 {
                return None; // would not fit the 8-device node
            }
            let base = i % (8 - span);
            Some((0..size).map(|k| base + k * stride).collect())
        })
        .collect();

    let mut group = c.benchmark_group("ablation/comm_group_pool");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("cold_construction", |b| {
        b.iter(|| {
            // A fresh pool every time: every lookup constructs.
            let pool = CommGroupPool::new(topology.clone());
            for g in &groups {
                black_box(pool.get_or_create(g.clone()).unwrap());
            }
        })
    });
    group.bench_function("warm_pool", |b| {
        let pool = CommGroupPool::new(topology.clone());
        pool.precreate_all().unwrap();
        b.iter(|| {
            for g in &groups {
                black_box(pool.get_or_create(g.clone()).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_collective_algorithm(c: &mut Criterion) {
    // Not a speed benchmark of the formula (it's nanoseconds) but a record
    // of the modelled crossover: the reports include the computed times so
    // the ring/tree trade-off is visible in the Criterion output.
    let link = Link::of_class(LinkClass::InfiniBand100);
    let mut group = c.benchmark_group("ablation/collective_algorithm");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, payload) in [("4KiB", 4 * 1024u64), ("64MiB", 64 * MIB), ("1GiB", GIB)] {
        let op = all_reduce(64, payload, link);
        group.bench_function(format!("ring/{name}"), |b| {
            b.iter(|| std::hint::black_box(op.time_with(CollectiveAlgorithm::Ring)))
        });
        group.bench_function(format!("tree/{name}"), |b| {
            b.iter(|| std::hint::black_box(op.time_with(CollectiveAlgorithm::Tree)))
        });
        group.bench_function(format!("auto/{name}"), |b| {
            b.iter(|| std::hint::black_box(op.auto_time()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_takeaway3,
    bench_memory_granularity,
    bench_partitioner,
    bench_group_pool,
    bench_collective_algorithm
);
criterion_main!(benches);
