//! Criterion counterpart of Figure 4: Eq. 1 search-time scaling in layers,
//! memory budget and strategy-space size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use galvatron_cluster::{rtx_titan_node, GIB, MIB};
use galvatron_core::{dp_search, GalvatronOptimizer, OptimizerConfig};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_strategy::{DecisionTreeBuilder, Paradigm};
use std::hint::black_box;

fn bert(layers: usize) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build(&format!("BERT-{layers}"))
}

fn bench_dp_by_layers(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let estimator = CostEstimator::new(topology.clone(), EstimatorConfig::default());
    let set = DecisionTreeBuilder::new(8).strategies();
    let usable = topology.usable_budget(16 * GIB);

    let mut group = c.benchmark_group("dp_search/layers");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for layers in [8usize, 16, 32, 64] {
        let model = bert(layers);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &model, |b, model| {
            b.iter(|| {
                dp_search(
                    &estimator,
                    black_box(model),
                    0..model.n_layers(),
                    0,
                    &set,
                    16,
                    usable,
                    32 * MIB,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dp_by_budget(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let estimator = CostEstimator::new(topology.clone(), EstimatorConfig::default());
    let set = DecisionTreeBuilder::new(8).strategies();
    let model = bert(32);

    let mut group = c.benchmark_group("dp_search/budget_gb");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for budget_gb in [8u64, 12, 16, 20] {
        let usable = topology.usable_budget(budget_gb * GIB);
        group.bench_with_input(
            BenchmarkId::from_parameter(budget_gb),
            &usable,
            |b, &usable| {
                b.iter(|| {
                    dp_search(
                        &estimator,
                        &model,
                        0..model.n_layers(),
                        0,
                        &set,
                        16,
                        usable,
                        32 * MIB,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_full_search_by_space(c: &mut Criterion) {
    let topology = rtx_titan_node(8);
    let model = bert(32);
    let variants: [(&str, OptimizerConfig); 3] = [
        (
            "dp_tp",
            OptimizerConfig {
                paradigms: vec![Paradigm::Data, Paradigm::Tensor],
                allow_pipeline: false,
                max_batch: 32,
                ..OptimizerConfig::default()
            },
        ),
        (
            "dp_pp",
            OptimizerConfig {
                paradigms: vec![Paradigm::Data],
                max_batch: 32,
                ..OptimizerConfig::default()
            },
        ),
        (
            "full",
            OptimizerConfig {
                max_batch: 32,
                ..OptimizerConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("algorithm1/strategy_space");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, cfg) in variants {
        let optimizer = GalvatronOptimizer::new(cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                optimizer
                    .optimize(black_box(&model), &topology, 16 * GIB)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_by_layers,
    bench_dp_by_budget,
    bench_full_search_by_space
);
criterion_main!(benches);
