//! Micro-benchmarks of the cost estimator: how cheap is `c(l, s)`,
//! `O(l, s)`, `R(l, s_i, s_j)` and a whole-plan estimate? These bound the
//! planner's constant factors (Figure 4 depends on them).

use criterion::{criterion_group, criterion_main, Criterion};
use galvatron_cluster::{rtx_titan_node, GIB};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::PaperModel;
use galvatron_strategy::{DecisionTreeBuilder, IntraStageStrategy, Paradigm, ParallelPlan};
use std::hint::black_box;

fn bench_layer_cost(c: &mut Criterion) {
    let estimator = CostEstimator::new(rtx_titan_node(8), EstimatorConfig::default());
    let model = PaperModel::BertHuge32.spec();
    let layer = &model.layers[5];
    let set = DecisionTreeBuilder::new(8).strategies();

    c.bench_function("estimator/layer_cost_single", |b| {
        let strategy = &set.strategies()[0];
        b.iter(|| {
            estimator
                .layer_cost(black_box(layer), model.dtype, strategy, 32, 0)
                .unwrap()
        })
    });

    c.bench_function("estimator/layer_cost_all_22_candidates", |b| {
        b.iter(|| {
            for s in set.iter() {
                black_box(estimator.layer_cost(layer, model.dtype, s, 32, 0).unwrap());
            }
        })
    });

    c.bench_function("estimator/layer_memory", |b| {
        let strategy = &set.strategies()[0];
        b.iter(|| estimator.layer_memory(black_box(layer), model.dtype, strategy, 32))
    });

    c.bench_function("estimator/transformation_cost", |b| {
        let a = &set.strategies()[1];
        let s = &set.strategies()[2];
        b.iter(|| {
            estimator
                .transformation_cost(black_box(layer), model.dtype, a, s, 32, 0)
                .unwrap()
        })
    });
}

fn bench_plan_cost(c: &mut Criterion) {
    let estimator = CostEstimator::new(rtx_titan_node(8), EstimatorConfig::default());
    let model = PaperModel::VitHuge32.spec();
    let plan = ParallelPlan::uniform(
        "bench",
        model.n_layers(),
        8,
        IntraStageStrategy::pure(Paradigm::ShardedData, 8).unwrap(),
        64,
    );
    c.bench_function("estimator/plan_cost_34_layers", |b| {
        b.iter(|| estimator.plan_cost(black_box(&model), &plan).unwrap())
    });
    c.bench_function("estimator/plan_fits", |b| {
        b.iter(|| {
            estimator
                .plan_fits(black_box(&model), &plan, 16 * GIB)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_layer_cost, bench_plan_cost);
criterion_main!(benches);
