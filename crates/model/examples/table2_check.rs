fn main() {
    for m in galvatron_model::PaperModel::ALL {
        let s = m.spec();
        println!("{:<14} params {:>8.1}M (paper {:>8.1}M, {:+.2}%)  act {:>9.2}MB (paper {:>9.2}MB, {:+.2}%)",
            m.name(),
            s.total_param_count() as f64/1e6, m.paper_param_count() as f64/1e6,
            100.0*(s.total_param_count() as f64/m.paper_param_count() as f64 - 1.0),
            s.activation_bytes_per_sample() as f64/(1<<20) as f64, m.paper_activation_mb(),
            100.0*((s.activation_bytes_per_sample() as f64/(1<<20) as f64)/m.paper_activation_mb() - 1.0));
    }
}
