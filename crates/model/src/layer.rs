//! Per-layer parameter, activation, FLOP and communication-volume accounting.
//!
//! The accounting follows the standard Megatron-LM decomposition (Korthikanti
//! et al.) at fp32, which reproduces the paper's Table 2 numbers: one encoder
//! layer stashes `68·s·h` bytes of sequence-linear activations plus
//! `10·a·s²` bytes of attention-quadratic state when attention dropout is on
//! (NLP models) or `4·a·s²` (just the softmax output) when it is off (the
//! common ViT/Swin configuration). Checked against Table 2: BERT-Huge-32
//! evaluates to 3 146 MB/sample vs. the paper's 3 149.39 MB.

use crate::tensor::DType;
use serde::{Deserialize, Serialize};

/// Geometry of one (self- or cross-) attention block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttentionGeometry {
    /// Query sequence length.
    pub q_len: u64,
    /// Key/value sequence length (equals `q_len` for self-attention).
    pub kv_len: u64,
    /// Number of attention heads.
    pub heads: u64,
    /// Local-attention window (Swin): each query attends to `window` keys.
    /// `None` means full attention.
    pub window: Option<u64>,
}

impl AttentionGeometry {
    /// Self-attention over `seq` tokens.
    pub fn self_attn(seq: u64, heads: u64) -> Self {
        AttentionGeometry {
            q_len: seq,
            kv_len: seq,
            heads,
            window: None,
        }
    }

    /// Windowed self-attention (Swin-style shifted windows).
    pub fn windowed(seq: u64, heads: u64, window: u64) -> Self {
        AttentionGeometry {
            q_len: seq,
            kv_len: seq,
            heads,
            window: Some(window),
        }
    }

    /// Cross-attention from `q_len` decoder tokens over `kv_len` encoder ones.
    pub fn cross(q_len: u64, kv_len: u64, heads: u64) -> Self {
        AttentionGeometry {
            q_len,
            kv_len,
            heads,
            window: None,
        }
    }

    /// Elements of one `heads × q × kv` score tensor (windowed attention only
    /// materialises the in-window scores).
    pub fn score_elements(&self) -> u64 {
        let kv_eff = self.window.unwrap_or(self.kv_len).min(self.kv_len);
        self.heads * self.q_len * kv_eff
    }

    /// FLOPs of the two score matmuls (`QKᵀ` and `scores·V`) for hidden
    /// width `h`: `4 · q · kv_eff · h`.
    pub fn score_flops(&self, hidden: u64) -> f64 {
        let kv_eff = self.window.unwrap_or(self.kv_len).min(self.kv_len) as f64;
        4.0 * self.q_len as f64 * kv_eff * hidden as f64
    }
}

/// The kinds of layers the zoo composes models from.
///
/// Galvatron's planner assigns one parallelism strategy per layer, so every
/// entry here — including embeddings and heads — is a planning unit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token + learned-position embedding with post-LN (BERT/T5/GPT input).
    Embedding {
        /// Vocabulary size.
        vocab: u64,
        /// Sequence length.
        seq: u64,
        /// Hidden width.
        hidden: u64,
    },
    /// Convolutional patchification + position embedding (ViT/Swin input).
    PatchEmbed {
        /// Input channels (3 for RGB).
        in_channels: u64,
        /// Square patch side in pixels.
        patch: u64,
        /// Number of output tokens (patches, + CLS where applicable).
        seq: u64,
        /// Hidden width.
        hidden: u64,
    },
    /// A standard pre/post-LN Transformer encoder layer
    /// (self-attention + MLP).
    Encoder {
        /// Sequence length.
        seq: u64,
        /// Hidden width.
        hidden: u64,
        /// Attention heads.
        heads: u64,
        /// MLP inner width (usually `4·hidden`).
        ffn: u64,
        /// Swin-style attention window (None = full attention).
        window: Option<u64>,
        /// Whether attention-probability dropout states are stashed
        /// (true for the NLP models, false for ViT/Swin).
        attn_dropout: bool,
        /// Gated (SwiGLU-style) feed-forward: a third `h×ffn` projection
        /// whose output multiplies the activation (LLaMA-family models).
        gated_ffn: bool,
    },
    /// A Transformer decoder layer: self-attention + cross-attention + MLP.
    Decoder {
        /// Target (decoder) sequence length.
        seq: u64,
        /// Source (encoder memory) sequence length for cross-attention.
        src_seq: u64,
        /// Hidden width.
        hidden: u64,
        /// Attention heads.
        heads: u64,
        /// MLP inner width.
        ffn: u64,
        /// Whether attention-probability dropout states are stashed.
        attn_dropout: bool,
    },
    /// Swin patch merging: 2×2 neighbourhoods concatenated and projected,
    /// halving the resolution and doubling the width.
    PatchMerging {
        /// Input tokens.
        in_seq: u64,
        /// Input width (output width is `2·in_hidden`).
        in_hidden: u64,
    },
    /// Output head: classifier (`positions = 1`, pooled CLS) or per-position
    /// language-model head (`positions = seq`).
    Head {
        /// Input width.
        hidden: u64,
        /// Output classes / vocabulary size.
        classes: u64,
        /// How many positions produce logits.
        positions: u64,
        /// Whether a BERT-style dense transform precedes the projection.
        with_transform: bool,
        /// Whether the projection matrix is weight-tied to the input
        /// embedding (BERT/T5/GPT); tied weights are counted once, at the
        /// embedding.
        tied: bool,
    },
}

/// A fully-specified layer: a kind plus a display name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Display name ("enc.17", "embed", ...). Stable within a model.
    pub name: String,
    /// The layer geometry.
    pub kind: LayerKind,
}

/// fp32 byte coefficients of the Megatron activation decomposition
/// (per `s·h` token-feature element).
const ENC_LINEAR_COEFF: f64 = 68.0;
const DEC_LINEAR_COEFF: f64 = 94.0; // + cross-attn (22) + third LN (4)
/// fp32 bytes per score element with attention dropout: softmax output (4) +
/// dropped probabilities (4) + mask accounted at fp32 width (2) — the
/// Megatron `5as/h` fp16 term doubled.
const QUAD_COEFF_DROPOUT: f64 = 10.0;
/// Without attention dropout only the softmax output is stashed.
const QUAD_COEFF_PLAIN: f64 = 4.0;
/// Of the 68 `s·h`-linear bytes, 20 are TP-replicated (LN and block inputs,
/// residual dropout masks — Megatron's `10·sbh` fp16 term doubled).
const ENC_REPLICATED_COEFF: f64 = 20.0;
const DEC_REPLICATED_COEFF: f64 = 26.0;

impl LayerSpec {
    /// Construct with a name.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        LayerSpec {
            name: name.into(),
            kind,
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> u64 {
        match &self.kind {
            LayerKind::Embedding { vocab, seq, hidden } => {
                vocab * hidden + seq * hidden + 2 * hidden
            }
            LayerKind::PatchEmbed {
                in_channels,
                patch,
                seq,
                hidden,
            } => in_channels * patch * patch * hidden + hidden + seq * hidden,
            LayerKind::Encoder {
                hidden,
                ffn,
                gated_ffn,
                ..
            } => {
                let attn = 4 * hidden * hidden + 4 * hidden;
                let mlp_mats = if *gated_ffn { 3 } else { 2 };
                let mlp = mlp_mats * hidden * ffn + hidden + ffn;
                let ln = 4 * hidden;
                attn + mlp + ln
            }
            LayerKind::Decoder { hidden, ffn, .. } => {
                let self_attn = 4 * hidden * hidden + 4 * hidden;
                let cross_attn = 4 * hidden * hidden + 4 * hidden;
                let mlp = 2 * hidden * ffn + hidden + ffn;
                let ln = 6 * hidden;
                self_attn + cross_attn + mlp + ln
            }
            LayerKind::PatchMerging { in_hidden, .. } => {
                // Linear 4h → 2h plus LN over the concatenated 4h features.
                8 * in_hidden * in_hidden + 2 * in_hidden + 8 * in_hidden
            }
            LayerKind::Head {
                hidden,
                classes,
                with_transform,
                tied,
                ..
            } => {
                let proj = if *tied {
                    *classes
                } else {
                    hidden * classes + classes
                };
                let transform = if *with_transform {
                    hidden * hidden + 3 * hidden
                } else {
                    0
                };
                proj + transform
            }
        }
    }

    /// Parameter bytes at `dtype`.
    pub fn param_bytes(&self, dtype: DType) -> u64 {
        self.param_count() * dtype.size_bytes()
    }

    /// Forward FLOPs for one sample. Backward is modelled as `2×` forward
    /// (§3.4: "the backward computation is usually twice of the forward").
    pub fn forward_flops_per_sample(&self) -> f64 {
        match &self.kind {
            LayerKind::Embedding { seq, hidden, .. } => {
                // Lookup + position add + LN: memory-bound; count 8·s·h.
                8.0 * (*seq as f64) * (*hidden as f64)
            }
            LayerKind::PatchEmbed {
                in_channels,
                patch,
                seq,
                hidden,
            } => 2.0 * (*seq as f64) * (*in_channels * patch * patch) as f64 * (*hidden as f64),
            LayerKind::Encoder {
                seq,
                hidden,
                heads,
                ffn,
                window,
                gated_ffn,
                ..
            } => {
                let s = *seq as f64;
                let h = *hidden as f64;
                let f = *ffn as f64;
                let attn_geo = match window {
                    Some(w) => AttentionGeometry::windowed(*seq, *heads, *w),
                    None => AttentionGeometry::self_attn(*seq, *heads),
                };
                let mlp_matmuls = if *gated_ffn { 6.0 } else { 4.0 };
                // qkv (6sh²) + scores + output proj (2sh²) + MLP
                8.0 * s * h * h + attn_geo.score_flops(*hidden) + mlp_matmuls * s * h * f
            }
            LayerKind::Decoder {
                seq,
                src_seq,
                hidden,
                heads,
                ffn,
                ..
            } => {
                let s = *seq as f64;
                let h = *hidden as f64;
                let f = *ffn as f64;
                let self_geo = AttentionGeometry::self_attn(*seq, *heads);
                let cross_geo = AttentionGeometry::cross(*seq, *src_seq, *heads);
                // self qkv+proj (8sh²) + cross q+proj (4sh²) + cross kv
                // (4·src·h²) + scores + MLP.
                8.0 * s * h * h
                    + 4.0 * s * h * h
                    + 4.0 * (*src_seq as f64) * h * h
                    + self_geo.score_flops(*hidden)
                    + cross_geo.score_flops(*hidden)
                    + 4.0 * s * h * f
            }
            LayerKind::PatchMerging { in_seq, in_hidden } => {
                // (s/4) tokens × (4h → 2h) linear.
                let s_out = (*in_seq / 4) as f64;
                2.0 * s_out * (4 * in_hidden) as f64 * (2 * in_hidden) as f64
            }
            LayerKind::Head {
                hidden,
                classes,
                positions,
                with_transform,
                ..
            } => {
                let base = 2.0 * (*positions as f64) * (*hidden as f64) * (*classes as f64);
                let transform = if *with_transform {
                    2.0 * (*positions as f64) * (*hidden as f64) * (*hidden as f64)
                } else {
                    0.0
                };
                base + transform
            }
        }
    }

    /// Activation bytes stashed for backward, per sample, when the layer is
    /// *not* tensor-parallel. See the module docs for the decomposition.
    pub fn activation_bytes_per_sample(&self, dtype: DType) -> u64 {
        let (replicated, shardable) = self.activation_split_bytes(dtype);
        replicated + shardable
    }

    /// Activation bytes per sample split into (TP-replicated, TP-shardable)
    /// components: under `t`-way tensor parallelism the stash per device is
    /// `replicated + shardable / t`.
    pub fn activation_split_bytes(&self, dtype: DType) -> (u64, u64) {
        // Coefficients are calibrated at fp32; other dtypes scale the float
        // parts proportionally.
        let scale = dtype.size_bytes() as f64 / 4.0;
        let (repl, shard) = match &self.kind {
            LayerKind::Embedding { seq, hidden, .. } => {
                // Output (4sh) + ids (8s) + LN input (4sh); all replicated
                // under vocab-parallel TP (output is all-reduced).
                let sh = (*seq * *hidden) as f64;
                (8.0 * sh + 8.0 * *seq as f64, 0.0)
            }
            LayerKind::PatchEmbed {
                in_channels,
                patch,
                seq,
                hidden,
            } => {
                let sh = (*seq * *hidden) as f64;
                let input = (*in_channels * patch * patch * *seq) as f64;
                (4.0 * sh + 4.0 * input, 0.0)
            }
            LayerKind::Encoder {
                seq,
                hidden,
                heads,
                window,
                attn_dropout,
                ffn,
                gated_ffn,
                ..
            } => {
                let sh = (*seq * *hidden) as f64;
                let geo = match window {
                    Some(w) => AttentionGeometry::windowed(*seq, *heads, *w),
                    None => AttentionGeometry::self_attn(*seq, *heads),
                };
                let quad_coeff = if *attn_dropout {
                    QUAD_COEFF_DROPOUT
                } else {
                    QUAD_COEFF_PLAIN
                };
                // The 68·s·h linear stash assumes ffn = 4h; scale the MLP
                // share (8·s·f of it) for other widths. Gated FFNs stash one
                // extra s·f activation (the gate output).
                let mut mlp_adjust = 8.0 * (*seq as f64) * (*ffn as f64 - 4.0 * *hidden as f64);
                if *gated_ffn {
                    mlp_adjust += 4.0 * (*seq * *ffn) as f64;
                }
                let linear = ENC_LINEAR_COEFF * sh + mlp_adjust;
                let repl = ENC_REPLICATED_COEFF * sh;
                let quad = quad_coeff * geo.score_elements() as f64;
                (repl, (linear - repl).max(0.0) + quad)
            }
            LayerKind::Decoder {
                seq,
                src_seq,
                hidden,
                heads,
                ffn,
                attn_dropout,
            } => {
                let sh = (*seq * *hidden) as f64;
                let quad_coeff = if *attn_dropout {
                    QUAD_COEFF_DROPOUT
                } else {
                    QUAD_COEFF_PLAIN
                };
                let self_geo = AttentionGeometry::self_attn(*seq, *heads);
                let cross_geo = AttentionGeometry::cross(*seq, *src_seq, *heads);
                let mlp_adjust = 8.0 * (*seq as f64) * (*ffn as f64 - 4.0 * *hidden as f64);
                let linear = DEC_LINEAR_COEFF * sh + mlp_adjust;
                let repl = DEC_REPLICATED_COEFF * sh;
                let quad =
                    quad_coeff * (self_geo.score_elements() + cross_geo.score_elements()) as f64;
                (repl, (linear - repl).max(0.0) + quad)
            }
            LayerKind::PatchMerging { in_seq, in_hidden } => {
                // Input (4·s·h) + output (4·(s/4)·2h = 2·s·h).
                let sh = (*in_seq * *in_hidden) as f64;
                (2.0 * sh, 4.0 * sh)
            }
            LayerKind::Head {
                hidden,
                classes,
                positions,
                with_transform,
                ..
            } => {
                let input = 4.0 * (*positions * *hidden) as f64;
                let logits = 4.0 * (*positions * *classes) as f64;
                let transform = if *with_transform {
                    8.0 * (*positions * *hidden) as f64
                } else {
                    0.0
                };
                // Logits shard under vocab-parallel TP.
                (input + transform, logits)
            }
        };
        (
            (repl * scale).round() as u64,
            (shard * scale).round() as u64,
        )
    }

    /// Activation bytes per sample per device under `tp`-way tensor
    /// parallelism ("TP has some additional replications of the activations",
    /// §3.1.1 — the replicated component does not shrink).
    pub fn activation_bytes_tp(&self, dtype: DType, tp: u64) -> u64 {
        let (replicated, shardable) = self.activation_split_bytes(dtype);
        replicated + shardable / tp.max(1)
    }

    /// Number of all-reduce synchronisations Megatron-style TP inserts in the
    /// *forward* pass of this layer (the backward pass mirrors them).
    pub fn tp_allreduces_per_pass(&self) -> u32 {
        match &self.kind {
            LayerKind::Encoder { .. } => 2,      // after attention, after MLP
            LayerKind::Decoder { .. } => 3,      // + after cross-attention
            LayerKind::Embedding { .. } => 1,    // vocab-parallel gather
            LayerKind::PatchEmbed { .. } => 0,   // replicated conv
            LayerKind::PatchMerging { .. } => 1, // row-parallel linear
            LayerKind::Head { .. } => 1,         // vocab-parallel logits
        }
    }

    /// Bytes of the layer's output for one sample (the payload of PP
    /// boundary transfers, TP all-reduces and Slice-Gather transformations).
    pub fn output_bytes_per_sample(&self, dtype: DType) -> u64 {
        let elems = match &self.kind {
            LayerKind::Embedding { seq, hidden, .. } => seq * hidden,
            LayerKind::PatchEmbed { seq, hidden, .. } => seq * hidden,
            LayerKind::Encoder { seq, hidden, .. } => seq * hidden,
            LayerKind::Decoder { seq, hidden, .. } => seq * hidden,
            LayerKind::PatchMerging { in_seq, in_hidden } => (in_seq / 4) * (2 * in_hidden),
            LayerKind::Head {
                classes, positions, ..
            } => positions * classes,
        };
        elems * dtype.size_bytes()
    }

    /// Whether this is a Transformer compute layer (the paper's "Layer Num"
    /// column counts only these).
    pub fn is_transformer_layer(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Encoder { .. } | LayerKind::Decoder { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bert_huge_layer() -> LayerSpec {
        LayerSpec::new(
            "enc",
            LayerKind::Encoder {
                seq: 512,
                hidden: 1280,
                heads: 20,
                ffn: 4 * 1280,
                window: None,
                attn_dropout: true,
                gated_ffn: false,
            },
        )
    }

    #[test]
    fn bert_huge_layer_params_match_12h_squared() {
        let l = bert_huge_layer();
        let h = 1280u64;
        let expected = 12 * h * h + 13 * h;
        assert_eq!(l.param_count(), expected);
    }

    #[test]
    fn bert_huge_layer_activation_matches_megatron_decomposition() {
        // 68·s·h + 10·a·s² bytes at fp32 — the Table 2 calibration point.
        let l = bert_huge_layer();
        let expected = 68 * 512 * 1280 + 10 * 20 * 512 * 512;
        assert_eq!(l.activation_bytes_per_sample(DType::F32), expected);
        // fp16 halves it.
        assert_eq!(l.activation_bytes_per_sample(DType::F16), expected / 2);
    }

    #[test]
    fn disabling_attn_dropout_shrinks_only_the_quadratic_term() {
        let with = bert_huge_layer();
        let without = LayerSpec::new(
            "enc",
            LayerKind::Encoder {
                seq: 512,
                hidden: 1280,
                heads: 20,
                ffn: 4 * 1280,
                window: None,
                attn_dropout: false,
                gated_ffn: false,
            },
        );
        let delta = with.activation_bytes_per_sample(DType::F32)
            - without.activation_bytes_per_sample(DType::F32);
        assert_eq!(delta, (10 - 4) * 20 * 512 * 512);
    }

    #[test]
    fn windowed_attention_is_linear_in_seq() {
        let full = AttentionGeometry::self_attn(3136, 10);
        let windowed = AttentionGeometry::windowed(3136, 10, 49);
        assert_eq!(full.score_elements(), 10 * 3136 * 3136);
        assert_eq!(windowed.score_elements(), 10 * 3136 * 49);
        assert!(windowed.score_flops(320) < full.score_flops(320));
    }

    #[test]
    fn decoder_costs_exceed_encoder_costs() {
        let enc = bert_huge_layer();
        let dec = LayerSpec::new(
            "dec",
            LayerKind::Decoder {
                seq: 512,
                src_seq: 512,
                hidden: 1280,
                heads: 20,
                ffn: 4 * 1280,
                attn_dropout: true,
            },
        );
        assert!(dec.param_count() > enc.param_count());
        assert!(
            dec.activation_bytes_per_sample(DType::F32)
                > enc.activation_bytes_per_sample(DType::F32)
        );
        assert!(dec.forward_flops_per_sample() > enc.forward_flops_per_sample());
        assert_eq!(dec.tp_allreduces_per_pass(), 3);
    }

    #[test]
    fn tp_shards_only_the_shardable_part() {
        let l = bert_huge_layer();
        let (repl, shard) = l.activation_split_bytes(DType::F32);
        assert_eq!(repl, 20 * 512 * 1280);
        let tp8 = l.activation_bytes_tp(DType::F32, 8);
        assert_eq!(tp8, repl + shard / 8);
        // TP can never shrink the stash below the replicated floor.
        assert!(l.activation_bytes_tp(DType::F32, 1_000_000) >= repl);
    }

    #[test]
    fn head_logits_dominate_lm_heads() {
        let lm = LayerSpec::new(
            "mlm",
            LayerKind::Head {
                hidden: 1280,
                classes: 30522,
                positions: 512,
                with_transform: true,
                tied: true,
            },
        );
        let cls = LayerSpec::new(
            "cls",
            LayerKind::Head {
                hidden: 1280,
                classes: 1000,
                positions: 1,
                with_transform: false,
                tied: false,
            },
        );
        assert!(lm.activation_bytes_per_sample(DType::F32) > 60 * (1 << 20));
        assert!(cls.activation_bytes_per_sample(DType::F32) < (1 << 20));
    }

    #[test]
    fn patch_merging_halves_tokens_and_doubles_width() {
        let pm = LayerSpec::new(
            "merge",
            LayerKind::PatchMerging {
                in_seq: 3136,
                in_hidden: 320,
            },
        );
        assert_eq!(
            pm.output_bytes_per_sample(DType::F32),
            (3136 / 4) * (2 * 320) * 4
        );
        assert_eq!(pm.param_count(), 8 * 320 * 320 + 2 * 320 + 8 * 320);
    }

    proptest! {
        #[test]
        fn accounting_is_monotone_in_hidden(
            h1 in prop::sample::select(vec![256u64, 512, 1024]),
        ) {
            let mk = |h: u64| LayerSpec::new("e", LayerKind::Encoder {
                seq: 128, hidden: h, heads: h / 64, ffn: 4 * h,
                window: None, attn_dropout: true, gated_ffn: false,
            });
            let small = mk(h1);
            let big = mk(h1 * 2);
            prop_assert!(big.param_count() > small.param_count());
            prop_assert!(big.forward_flops_per_sample() > small.forward_flops_per_sample());
            prop_assert!(
                big.activation_bytes_per_sample(DType::F32)
                    > small.activation_bytes_per_sample(DType::F32)
            );
        }

        #[test]
        fn tp_stash_is_monotone_nonincreasing(tp in 1u64..64) {
            let l = bert_huge_layer();
            let a = l.activation_bytes_tp(DType::F32, tp);
            let b = l.activation_bytes_tp(DType::F32, tp + 1);
            prop_assert!(b <= a);
        }
    }
}
