//! The model zoo: every configuration of the paper's Table 2 plus a
//! decoder-only GPT family as an extension.

use crate::layer::{LayerKind, LayerSpec};
use crate::tensor::DType;
use serde::{Deserialize, Serialize};

/// A Transformer model as Galvatron sees it: an ordered sequence of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Display name ("BERT-Huge-32", ...).
    pub name: String,
    /// Training precision (the paper trains fp32).
    pub dtype: DType,
    /// The layer sequence, input to output.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Total trainable parameters.
    pub fn total_param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total parameter bytes at the model dtype.
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes(self.dtype)).sum()
    }

    /// Total stashed activation bytes for one sample (Table 2's
    /// "Acti. Size/sample" column).
    pub fn activation_bytes_per_sample(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.activation_bytes_per_sample(self.dtype))
            .sum()
    }

    /// Total forward FLOPs for one sample.
    pub fn forward_flops_per_sample(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.forward_flops_per_sample())
            .sum()
    }

    /// Number of Transformer (encoder/decoder) layers — the paper's
    /// "Layer Num" column.
    pub fn transformer_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.is_transformer_layer())
            .count()
    }

    /// Total planning units (includes embeddings, merging layers, heads).
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// The same model at a different training precision. Halving the float
    /// width halves parameter/gradient/activation bytes and communication
    /// payloads throughout the stack (pair with
    /// `optimizer_bytes_per_param = 12` in the estimator/simulator configs
    /// for mixed-precision Adam: fp32 master + m + v).
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }
}

/// BERT-style encoder-only model configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BertConfig {
    /// Encoder layer count.
    pub layers: usize,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Sequence length.
    pub seq: u64,
    /// WordPiece vocabulary.
    pub vocab: u64,
}

impl BertConfig {
    /// Build the layer sequence.
    pub fn build(&self, name: &str) -> ModelSpec {
        let mut layers = Vec::with_capacity(self.layers + 2);
        layers.push(LayerSpec::new(
            "embed",
            LayerKind::Embedding {
                vocab: self.vocab,
                seq: self.seq,
                hidden: self.hidden,
            },
        ));
        for i in 0..self.layers {
            layers.push(LayerSpec::new(
                format!("enc.{i}"),
                LayerKind::Encoder {
                    seq: self.seq,
                    hidden: self.hidden,
                    heads: self.heads,
                    ffn: 4 * self.hidden,
                    window: None,
                    attn_dropout: true,
                    gated_ffn: false,
                },
            ));
        }
        layers.push(LayerSpec::new(
            "mlm_head",
            LayerKind::Head {
                hidden: self.hidden,
                classes: self.vocab,
                positions: self.seq,
                with_transform: true,
                tied: true,
            },
        ));
        ModelSpec {
            name: name.to_string(),
            dtype: DType::F32,
            layers,
        }
    }
}

/// Decoder-only GPT-style configuration (extension beyond the paper's zoo).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GptConfig {
    /// Decoder layer count.
    pub layers: usize,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Context length.
    pub seq: u64,
    /// BPE vocabulary.
    pub vocab: u64,
}

impl GptConfig {
    /// The GPT-2 XL (1.5B-parameter) configuration — the motivating model
    /// scale of the paper's introduction, and the decoder-only point of the
    /// BMW recompute benchmark grid.
    pub fn gpt2_1_5b() -> Self {
        GptConfig {
            layers: 48,
            hidden: 1600,
            heads: 25,
            seq: 1024,
            vocab: 50257,
        }
    }

    /// Build the layer sequence. Causal self-attention has the same shape
    /// accounting as bidirectional (masked entries are still materialised in
    /// a dense implementation), so GPT layers reuse the encoder accounting.
    pub fn build(&self, name: &str) -> ModelSpec {
        let mut layers = Vec::with_capacity(self.layers + 2);
        layers.push(LayerSpec::new(
            "embed",
            LayerKind::Embedding {
                vocab: self.vocab,
                seq: self.seq,
                hidden: self.hidden,
            },
        ));
        for i in 0..self.layers {
            layers.push(LayerSpec::new(
                format!("dec.{i}"),
                LayerKind::Encoder {
                    seq: self.seq,
                    hidden: self.hidden,
                    heads: self.heads,
                    ffn: 4 * self.hidden,
                    window: None,
                    attn_dropout: true,
                    gated_ffn: false,
                },
            ));
        }
        layers.push(LayerSpec::new(
            "lm_head",
            LayerKind::Head {
                hidden: self.hidden,
                classes: self.vocab,
                positions: self.seq,
                with_transform: false,
                tied: true,
            },
        ));
        ModelSpec {
            name: name.to_string(),
            dtype: DType::F32,
            layers,
        }
    }
}

/// LLaMA-style decoder-only configuration: gated (SwiGLU) feed-forward
/// with a non-`4h` inner width, long context — zoo breadth beyond the
/// paper's families.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlamaConfig {
    /// Decoder layer count.
    pub layers: usize,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Gated feed-forward inner width (e.g. 11008 for 7B).
    pub ffn: u64,
    /// Context length.
    pub seq: u64,
    /// SentencePiece vocabulary.
    pub vocab: u64,
}

impl LlamaConfig {
    /// The 6.7B-parameter configuration.
    pub fn llama_7b() -> Self {
        LlamaConfig {
            layers: 32,
            hidden: 4096,
            heads: 32,
            ffn: 11008,
            seq: 2048,
            vocab: 32000,
        }
    }

    /// Build the layer sequence.
    pub fn build(&self, name: &str) -> ModelSpec {
        let mut layers = Vec::with_capacity(self.layers + 2);
        layers.push(LayerSpec::new(
            "embed",
            LayerKind::Embedding {
                vocab: self.vocab,
                seq: self.seq,
                hidden: self.hidden,
            },
        ));
        for i in 0..self.layers {
            layers.push(LayerSpec::new(
                format!("dec.{i}"),
                LayerKind::Encoder {
                    seq: self.seq,
                    hidden: self.hidden,
                    heads: self.heads,
                    ffn: self.ffn,
                    window: None,
                    attn_dropout: false, // LLaMA trains without attn dropout
                    gated_ffn: true,
                },
            ));
        }
        layers.push(LayerSpec::new(
            "lm_head",
            LayerKind::Head {
                hidden: self.hidden,
                classes: self.vocab,
                positions: self.seq,
                with_transform: false,
                tied: false, // LLaMA does not tie the output projection
            },
        ));
        ModelSpec {
            name: name.to_string(),
            dtype: DType::F32,
            layers,
        }
    }
}

/// ViT configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VitConfig {
    /// Encoder layer count.
    pub layers: usize,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Square input image side in pixels.
    pub image: u64,
    /// Square patch side in pixels.
    pub patch: u64,
    /// Classifier classes.
    pub classes: u64,
}

impl VitConfig {
    /// Tokens = patches + CLS.
    pub fn seq(&self) -> u64 {
        (self.image / self.patch) * (self.image / self.patch) + 1
    }

    /// Build the layer sequence.
    pub fn build(&self, name: &str) -> ModelSpec {
        let seq = self.seq();
        let mut layers = Vec::with_capacity(self.layers + 2);
        layers.push(LayerSpec::new(
            "patch_embed",
            LayerKind::PatchEmbed {
                in_channels: 3,
                patch: self.patch,
                seq,
                hidden: self.hidden,
            },
        ));
        for i in 0..self.layers {
            layers.push(LayerSpec::new(
                format!("enc.{i}"),
                LayerKind::Encoder {
                    seq,
                    hidden: self.hidden,
                    heads: self.heads,
                    ffn: 4 * self.hidden,
                    window: None,
                    attn_dropout: false,
                    gated_ffn: false,
                },
            ));
        }
        layers.push(LayerSpec::new(
            "cls_head",
            LayerKind::Head {
                hidden: self.hidden,
                classes: self.classes,
                positions: 1,
                with_transform: false,
                tied: false,
            },
        ));
        ModelSpec {
            name: name.to_string(),
            dtype: DType::F32,
            layers,
        }
    }
}

/// T5-style encoder-decoder configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct T5Config {
    /// Encoder layer count.
    pub enc_layers: usize,
    /// Decoder layer count.
    pub dec_layers: usize,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Feed-forward inner width.
    pub ffn: u64,
    /// Source/target sequence length.
    pub seq: u64,
    /// SentencePiece vocabulary.
    pub vocab: u64,
}

impl T5Config {
    /// Build the layer sequence: embedding, encoders, decoders, LM head.
    pub fn build(&self, name: &str) -> ModelSpec {
        let mut layers = Vec::with_capacity(self.enc_layers + self.dec_layers + 2);
        layers.push(LayerSpec::new(
            "embed",
            LayerKind::Embedding {
                vocab: self.vocab,
                seq: self.seq,
                hidden: self.hidden,
            },
        ));
        for i in 0..self.enc_layers {
            layers.push(LayerSpec::new(
                format!("enc.{i}"),
                LayerKind::Encoder {
                    seq: self.seq,
                    hidden: self.hidden,
                    heads: self.heads,
                    ffn: self.ffn,
                    window: None,
                    attn_dropout: true,
                    gated_ffn: false,
                },
            ));
        }
        for i in 0..self.dec_layers {
            layers.push(LayerSpec::new(
                format!("dec.{i}"),
                LayerKind::Decoder {
                    seq: self.seq,
                    src_seq: self.seq,
                    hidden: self.hidden,
                    heads: self.heads,
                    ffn: self.ffn,
                    attn_dropout: true,
                },
            ));
        }
        layers.push(LayerSpec::new(
            "lm_head",
            LayerKind::Head {
                hidden: self.hidden,
                classes: self.vocab,
                positions: self.seq,
                with_transform: false,
                tied: true,
            },
        ));
        ModelSpec {
            name: name.to_string(),
            dtype: DType::F32,
            layers,
        }
    }
}

/// Swin Transformer configuration (hierarchical, multi-stage — §2.1:
/// "such multi-scale architectures also [bring] uneven computation and
/// memory across layers").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwinConfig {
    /// Layers per stage (the paper's "2/2/26/2" notation).
    pub depths: Vec<usize>,
    /// Hidden width per stage.
    pub hiddens: Vec<u64>,
    /// Attention heads per stage.
    pub heads: Vec<u64>,
    /// Square input image side.
    pub image: u64,
    /// Initial patch side (4 for standard Swin).
    pub patch: u64,
    /// Window size in *tokens* (7×7 = 49 for standard Swin).
    pub window: u64,
    /// Classifier classes.
    pub classes: u64,
}

impl SwinConfig {
    /// Build the layer sequence: patch embed, then per stage its encoder
    /// layers, with a patch-merging layer between stages, then the head.
    pub fn build(&self, name: &str) -> ModelSpec {
        assert_eq!(self.depths.len(), self.hiddens.len());
        assert_eq!(self.depths.len(), self.heads.len());
        let mut layers = Vec::new();
        let side0 = self.image / self.patch;
        layers.push(LayerSpec::new(
            "patch_embed",
            LayerKind::PatchEmbed {
                in_channels: 3,
                patch: self.patch,
                seq: side0 * side0,
                hidden: self.hiddens[0],
            },
        ));
        for (stage, ((&depth, &hidden), &heads)) in self
            .depths
            .iter()
            .zip(&self.hiddens)
            .zip(&self.heads)
            .enumerate()
        {
            let side = side0 >> stage;
            let seq = side * side;
            if stage > 0 {
                layers.push(LayerSpec::new(
                    format!("merge.{stage}"),
                    LayerKind::PatchMerging {
                        in_seq: (side * 2) * (side * 2),
                        in_hidden: self.hiddens[stage - 1],
                    },
                ));
            }
            for i in 0..depth {
                layers.push(LayerSpec::new(
                    format!("s{stage}.enc.{i}"),
                    LayerKind::Encoder {
                        seq,
                        hidden,
                        heads,
                        ffn: 4 * hidden,
                        window: Some(self.window.min(seq)),
                        attn_dropout: false,
                        gated_ffn: false,
                    },
                ));
            }
        }
        let last_hidden = *self.hiddens.last().expect("at least one stage");
        layers.push(LayerSpec::new(
            "cls_head",
            LayerKind::Head {
                hidden: last_hidden,
                classes: self.classes,
                positions: 1,
                with_transform: false,
                tied: false,
            },
        ));
        ModelSpec {
            name: name.to_string(),
            dtype: DType::F32,
            layers,
        }
    }
}

/// The ten evaluated configurations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PaperModel {
    BertHuge32,
    BertHuge48,
    BertXHuge,
    VitHuge32,
    VitHuge48,
    VitXHuge,
    T5Large32,
    T5Large48,
    SwinHuge32,
    SwinHuge48,
}

impl PaperModel {
    /// All ten configurations, in Table 2 order.
    pub const ALL: [PaperModel; 10] = [
        PaperModel::BertHuge32,
        PaperModel::BertHuge48,
        PaperModel::BertXHuge,
        PaperModel::VitHuge32,
        PaperModel::VitHuge48,
        PaperModel::VitXHuge,
        PaperModel::T5Large32,
        PaperModel::T5Large48,
        PaperModel::SwinHuge32,
        PaperModel::SwinHuge48,
    ];

    /// The eight models of the 8-GPU evaluation (Table 1).
    pub const TABLE1: [PaperModel; 8] = [
        PaperModel::BertHuge32,
        PaperModel::BertHuge48,
        PaperModel::VitHuge32,
        PaperModel::VitHuge48,
        PaperModel::T5Large32,
        PaperModel::T5Large48,
        PaperModel::SwinHuge32,
        PaperModel::SwinHuge48,
    ];

    /// Display name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperModel::BertHuge32 => "BERT-Huge-32",
            PaperModel::BertHuge48 => "BERT-Huge-48",
            PaperModel::BertXHuge => "BERT-xHuge",
            PaperModel::VitHuge32 => "ViT-Huge-32",
            PaperModel::VitHuge48 => "ViT-Huge-48",
            PaperModel::VitXHuge => "ViT-xHuge",
            PaperModel::T5Large32 => "T5-Large-32",
            PaperModel::T5Large48 => "T5-Large-48",
            PaperModel::SwinHuge32 => "Swin-Huge-32",
            PaperModel::SwinHuge48 => "Swin-Huge-48",
        }
    }

    /// Build the model.
    pub fn spec(self) -> ModelSpec {
        match self {
            PaperModel::BertHuge32 => BertConfig {
                layers: 32,
                hidden: 1280,
                heads: 20,
                seq: 512,
                vocab: 30522,
            }
            .build(self.name()),
            PaperModel::BertHuge48 => BertConfig {
                layers: 48,
                hidden: 1280,
                heads: 20,
                seq: 512,
                vocab: 30522,
            }
            .build(self.name()),
            PaperModel::BertXHuge => BertConfig {
                layers: 128,
                hidden: 2560,
                heads: 40,
                seq: 512,
                vocab: 30522,
            }
            .build(self.name()),
            PaperModel::VitHuge32 => VitConfig {
                layers: 32,
                hidden: 1280,
                heads: 16,
                image: 224,
                patch: 16,
                classes: 1000,
            }
            .build(self.name()),
            PaperModel::VitHuge48 => VitConfig {
                layers: 48,
                hidden: 1280,
                heads: 16,
                image: 224,
                patch: 16,
                classes: 1000,
            }
            .build(self.name()),
            PaperModel::VitXHuge => VitConfig {
                layers: 128,
                hidden: 2560,
                heads: 40,
                image: 224,
                patch: 16,
                classes: 1000,
            }
            .build(self.name()),
            PaperModel::T5Large32 => T5Config {
                enc_layers: 16,
                dec_layers: 16,
                hidden: 1024,
                heads: 16,
                ffn: 4096,
                seq: 512,
                vocab: 32128,
            }
            .build(self.name()),
            PaperModel::T5Large48 => T5Config {
                enc_layers: 24,
                dec_layers: 24,
                hidden: 1024,
                heads: 16,
                ffn: 4096,
                seq: 512,
                vocab: 32128,
            }
            .build(self.name()),
            PaperModel::SwinHuge32 => SwinConfig {
                depths: vec![2, 2, 26, 2],
                hiddens: vec![320, 640, 1280, 2560],
                heads: vec![10, 20, 40, 80],
                image: 224,
                patch: 4,
                window: 49,
                classes: 1000,
            }
            .build(self.name()),
            PaperModel::SwinHuge48 => SwinConfig {
                depths: vec![2, 2, 42, 2],
                hiddens: vec![320, 640, 1280, 2560],
                heads: vec![10, 20, 40, 80],
                image: 224,
                patch: 4,
                window: 49,
                classes: 1000,
            }
            .build(self.name()),
        }
    }

    /// Table 2 reference parameter count.
    pub fn paper_param_count(self) -> u64 {
        match self {
            PaperModel::BertHuge32 => 672_000_000,
            PaperModel::BertHuge48 => 987_000_000,
            PaperModel::BertXHuge => 10_200_000_000,
            PaperModel::VitHuge32 => 632_000_000,
            PaperModel::VitHuge48 => 947_000_000,
            PaperModel::VitXHuge => 10_100_000_000,
            PaperModel::T5Large32 => 502_000_000,
            PaperModel::T5Large48 => 737_000_000,
            PaperModel::SwinHuge32 => 701_000_000,
            PaperModel::SwinHuge48 => 1_016_000_000,
        }
    }

    /// Table 2 reference activation size per sample, in MB.
    pub fn paper_activation_mb(self) -> f64 {
        match self {
            PaperModel::BertHuge32 => 3149.39,
            PaperModel::BertHuge48 => 4657.51,
            PaperModel::BertXHuge => 24210.05,
            PaperModel::VitHuge32 => 646.5,
            PaperModel::VitHuge48 => 968.59,
            PaperModel::VitXHuge => 5313.9,
            PaperModel::T5Large32 => 4119.66,
            PaperModel::T5Large48 => 6107.75,
            PaperModel::SwinHuge32 => 726.59,
            PaperModel::SwinHuge48 => 1016.8,
        }
    }

    /// Table 2 "Layer Num" (Transformer layers only).
    pub fn paper_layer_count(self) -> usize {
        match self {
            PaperModel::BertHuge32 | PaperModel::VitHuge32 => 32,
            PaperModel::T5Large32 | PaperModel::SwinHuge32 => 32,
            PaperModel::BertHuge48 | PaperModel::VitHuge48 => 48,
            PaperModel::T5Large48 | PaperModel::SwinHuge48 => 48,
            PaperModel::BertXHuge | PaperModel::VitXHuge => 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(ours: f64, paper: f64) -> f64 {
        (ours - paper).abs() / paper
    }

    #[test]
    fn layer_counts_match_table2() {
        for m in PaperModel::ALL {
            assert_eq!(
                m.spec().transformer_layer_count(),
                m.paper_layer_count(),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn param_counts_match_table2_within_tolerance() {
        // The paper rounds to the nearest million (billion for xHuge); our
        // analytic counts land within 2% for every configuration.
        for m in PaperModel::ALL {
            let ours = m.spec().total_param_count() as f64;
            let paper = m.paper_param_count() as f64;
            assert!(
                rel_err(ours, paper) < 0.02,
                "{}: ours {:.1}M vs paper {:.1}M",
                m.name(),
                ours / 1e6,
                paper / 1e6
            );
        }
    }

    #[test]
    fn activation_sizes_match_table2_within_tolerance() {
        // BERT configurations reproduce Table 2 to ~1%; the CV models land
        // within 5% and T5 within 20% (the paper does not specify its
        // decoder stash accounting; see EXPERIMENTS.md).
        for m in PaperModel::ALL {
            // Table 2 "MB" is decimal megabytes (10^6 bytes).
            let ours = m.spec().activation_bytes_per_sample() as f64 / 1e6;
            let paper = m.paper_activation_mb();
            let tolerance = match m {
                PaperModel::T5Large32 | PaperModel::T5Large48 => 0.20,
                _ => 0.04,
            };
            assert!(
                rel_err(ours, paper) < tolerance,
                "{}: ours {ours:.2}MB vs paper {paper:.2}MB (err {:.1}%)",
                m.name(),
                100.0 * rel_err(ours, paper)
            );
        }
    }

    #[test]
    fn bert_huge_32_is_calibration_grade() {
        let m = PaperModel::BertHuge32;
        let ours_mb = m.spec().activation_bytes_per_sample() as f64 / 1e6;
        assert!(rel_err(ours_mb, m.paper_activation_mb()) < 0.02);
        assert!(
            rel_err(
                m.spec().total_param_count() as f64,
                m.paper_param_count() as f64
            ) < 0.005
        );
    }

    #[test]
    fn swin_layers_are_uneven() {
        // §5.5: "shallower layers have larger activation size and smaller
        // parameter size" — the property Figure 5 exploits.
        let swin = PaperModel::SwinHuge32.spec();
        let encs: Vec<&LayerSpec> = swin
            .layers
            .iter()
            .filter(|l| l.is_transformer_layer())
            .collect();
        let first = encs.first().unwrap();
        let last = encs.last().unwrap();
        assert!(
            first.activation_bytes_per_sample(DType::F32)
                > last.activation_bytes_per_sample(DType::F32)
        );
        assert!(first.param_count() < last.param_count());
    }

    #[test]
    fn gpt_builds_and_scales() {
        // GPT-2 XL is the paper's motivating 1.5B model (§1).
        let gpt2_xl = GptConfig::gpt2_1_5b().build("GPT2-XL");
        let params = gpt2_xl.total_param_count() as f64;
        assert!((params / 1.5e9 - 1.0).abs() < 0.15, "params {params}");
        assert_eq!(gpt2_xl.transformer_layer_count(), 48);
        // Long-context decoder stash: more than 3 MB/sample per layer, the
        // pressure the recompute dimension trades away.
        let per_layer = gpt2_xl.layers[1].activation_bytes_per_sample(DType::F32);
        assert!(per_layer > 3 << 20, "stash {per_layer} B/sample");
    }

    #[test]
    fn llama_7b_parameter_count() {
        let model = LlamaConfig::llama_7b().build("LLaMA-7B");
        let params = model.total_param_count() as f64;
        // 6.74B in the reference implementation.
        assert!(
            (params / 6.74e9 - 1.0).abs() < 0.02,
            "params {:.2}B",
            params / 1e9
        );
        // The gated FFN stashes more than an ungated one of the same width.
        let gated = &model.layers[1];
        let ungated = LayerSpec::new(
            "plain",
            LayerKind::Encoder {
                seq: 2048,
                hidden: 4096,
                heads: 32,
                ffn: 11008,
                window: None,
                attn_dropout: false,
                gated_ffn: false,
            },
        );
        assert!(
            gated.param_count() > ungated.param_count()
                && gated.activation_bytes_per_sample(DType::F32)
                    > ungated.activation_bytes_per_sample(DType::F32)
                && gated.forward_flops_per_sample() > ungated.forward_flops_per_sample()
        );
    }

    #[test]
    fn t5_decoder_half_is_heavier_per_layer() {
        let t5 = PaperModel::T5Large32.spec();
        let enc = t5.layers.iter().find(|l| l.name == "enc.0").unwrap();
        let dec = t5.layers.iter().find(|l| l.name == "dec.0").unwrap();
        assert!(dec.param_count() > enc.param_count());
    }

    #[test]
    fn flops_scale_with_depth() {
        let f32_ = PaperModel::BertHuge32.spec().forward_flops_per_sample();
        let f48 = PaperModel::BertHuge48.spec().forward_flops_per_sample();
        assert!(f48 > 1.4 * f32_);
        // Order of magnitude sanity: ~6·params·seq for an LM.
        let params = PaperModel::BertHuge32.spec().total_param_count() as f64;
        assert!(f32_ > 1.5 * params); // ≥ 2·params·(useful fraction)
        assert!(f32_ < 6.0 * params * 512.0);
    }
}
