//! Synthetic training workloads.
//!
//! The paper trains on English Wikipedia (NLP) and ImageNet-1K (CV). For a
//! fixed-shape Transformer, iteration time does not depend on token *values*
//! — only tensor shapes matter — so we substitute seeded synthetic batches
//! that exercise the same data path (batching, shape derivation, epoch
//! accounting) without the datasets.

use crate::tensor::{DType, TensorShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The input modality of a workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Token sequences (synthetic Wikipedia stand-in).
    Text {
        /// Vocabulary size for id sampling.
        vocab: u64,
        /// Tokens per sample.
        seq: u64,
    },
    /// Images (synthetic ImageNet-1K stand-in).
    Image {
        /// Channels (3 for RGB).
        channels: u64,
        /// Square image side in pixels.
        side: u64,
        /// Label classes.
        classes: u64,
    },
}

/// One materialised batch descriptor: shapes plus a content checksum so
/// tests can assert determinism without holding the data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticBatch {
    /// Samples in the batch.
    pub batch_size: u64,
    /// Input tensor shape (ids `[B×S]` or pixels `[B×C×H×W]`).
    pub input_shape: TensorShape,
    /// Label tensor shape.
    pub label_shape: TensorShape,
    /// Bytes the host-side batch occupies.
    pub host_bytes: u64,
    /// Seeded checksum of the generated contents.
    pub checksum: u64,
}

/// A deterministic synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    kind: WorkloadKind,
    rng: StdRng,
    samples_drawn: u64,
}

impl SyntheticDataset {
    /// Create with a seed for reproducibility.
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        SyntheticDataset {
            kind,
            rng: StdRng::seed_from_u64(seed),
            samples_drawn: 0,
        }
    }

    /// The modality.
    pub fn kind(&self) -> &WorkloadKind {
        &self.kind
    }

    /// Total samples drawn so far (epoch accounting).
    pub fn samples_drawn(&self) -> u64 {
        self.samples_drawn
    }

    /// Draw the next batch of `batch_size` samples.
    pub fn next_batch(&mut self, batch_size: u64) -> SyntheticBatch {
        self.samples_drawn += batch_size;
        match &self.kind {
            WorkloadKind::Text { vocab, seq } => {
                let mut checksum = 0u64;
                // Sample a sparse subset of ids; hashing every token of a
                // 512×B batch would dominate microbenchmarks for no benefit.
                for _ in 0..64 {
                    checksum = checksum
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(self.rng.gen_range(0..*vocab));
                }
                let input_shape = TensorShape::new(vec![batch_size, *seq]);
                let label_shape = TensorShape::new(vec![batch_size, *seq]);
                let host_bytes = input_shape.bytes(DType::I64) + label_shape.bytes(DType::I64);
                SyntheticBatch {
                    batch_size,
                    input_shape,
                    label_shape,
                    host_bytes,
                    checksum,
                }
            }
            WorkloadKind::Image {
                channels,
                side,
                classes,
            } => {
                let mut checksum = 0u64;
                for _ in 0..64 {
                    checksum = checksum
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(self.rng.gen_range(0..*classes));
                }
                let input_shape = TensorShape::new(vec![batch_size, *channels, *side, *side]);
                let label_shape = TensorShape::new(vec![batch_size]);
                let host_bytes = input_shape.bytes(DType::F32) + label_shape.bytes(DType::I64);
                SyntheticBatch {
                    batch_size,
                    input_shape,
                    label_shape,
                    host_bytes,
                    checksum,
                }
            }
        }
    }

    /// Wikipedia stand-in matched to a BERT/T5 sequence length.
    pub fn wikipedia(seq: u64, vocab: u64, seed: u64) -> Self {
        SyntheticDataset::new(WorkloadKind::Text { vocab, seq }, seed)
    }

    /// ImageNet-1K stand-in.
    pub fn imagenet(side: u64, seed: u64) -> Self {
        SyntheticDataset::new(
            WorkloadKind::Image {
                channels: 3,
                side,
                classes: 1000,
            },
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_batches_have_token_shapes() {
        let mut ds = SyntheticDataset::wikipedia(512, 30522, 7);
        let b = ds.next_batch(16);
        assert_eq!(b.input_shape.dims(), &[16, 512]);
        assert_eq!(b.host_bytes, 2 * 16 * 512 * 8);
        assert_eq!(ds.samples_drawn(), 16);
    }

    #[test]
    fn image_batches_have_pixel_shapes() {
        let mut ds = SyntheticDataset::imagenet(224, 7);
        let b = ds.next_batch(8);
        assert_eq!(b.input_shape.dims(), &[8, 3, 224, 224]);
        assert_eq!(b.label_shape.dims(), &[8]);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SyntheticDataset::wikipedia(128, 1000, 42);
        let mut b = SyntheticDataset::wikipedia(128, 1000, 42);
        for _ in 0..5 {
            assert_eq!(a.next_batch(4).checksum, b.next_batch(4).checksum);
        }
        let mut c = SyntheticDataset::wikipedia(128, 1000, 43);
        assert_ne!(a.next_batch(4).checksum, c.next_batch(4).checksum);
    }
}
