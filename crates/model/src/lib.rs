//! Transformer workload models: layer-level parameter, activation and FLOP
//! accounting, plus the model zoo the Galvatron paper evaluates.
//!
//! Galvatron treats a model as "a sequence of `L` layers" (§3.1.1); its
//! planner needs, per layer, exactly four quantities:
//!
//! 1. parameter bytes (→ DP/SDP/TP memory and gradient-sync volume),
//! 2. activation bytes stashed per sample (→ memory under a strategy),
//! 3. forward FLOPs per sample (→ compute time; backward = 2× forward, §3.4),
//! 4. boundary output bytes per sample (→ PP transfers and Slice-Gather).
//!
//! We derive all four analytically with the standard Megatron-LM activation
//! decomposition in fp32 (the paper trains fp32 on RTX TITANs; our derivation
//! reproduces Table 2's BERT numbers to <0.1%). The zoo builds the paper's
//! ten configurations (Table 2) plus a decoder-only GPT family as an
//! extension.

#![warn(missing_docs)]

pub mod layer;
pub mod stats;
pub mod tensor;
pub mod workload;
pub mod zoo;

pub use layer::{AttentionGeometry, LayerKind, LayerSpec};
pub use stats::ModelStats;
pub use tensor::{DType, TensorShape};
pub use workload::{SyntheticBatch, SyntheticDataset, WorkloadKind};
pub use zoo::{
    BertConfig, GptConfig, LlamaConfig, ModelSpec, PaperModel, SwinConfig, T5Config, VitConfig,
};
