//! Minimal tensor metadata: shapes and element types.
//!
//! Galvatron's cost estimator "uses the shape of a tensor and its data type
//! to calculate its memory" (§3.4) — it never materialises values, so this is
//! all the tensor machinery the planner needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float (the paper's training precision).
    F32,
    /// 16-bit IEEE float.
    F16,
    /// bfloat16.
    BF16,
    /// Byte masks (dropout masks, attention masks).
    U8,
    /// 64-bit token indices.
    I64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
            DType::U8 => 1,
            DType::I64 => 8,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::U8 => "u8",
            DType::I64 => "i64",
        };
        f.write_str(s)
    }
}

/// A dense tensor shape (row-major, leading batch dimension by convention).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    dims: Vec<u64>,
}

impl TensorShape {
    /// Build from a dimension list. Zero-sized dimensions are allowed (an
    /// empty tensor) but an empty *list* is a scalar of one element.
    pub fn new(dims: impl Into<Vec<u64>>) -> Self {
        TensorShape { dims: dims.into() }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Bytes occupied at `dtype`.
    pub fn bytes(&self, dtype: DType) -> u64 {
        self.num_elements() * dtype.size_bytes()
    }

    /// Shape with one dimension divided by `parts` (tensor-parallel split).
    /// Panics if the dimension does not divide evenly — strategies guarantee
    /// power-of-two degrees over power-of-two model dims.
    pub fn split_dim(&self, dim: usize, parts: u64) -> TensorShape {
        assert!(
            self.dims[dim].is_multiple_of(parts),
            "dim {dim} of {self} not divisible by {parts}"
        );
        let mut dims = self.dims.clone();
        dims[dim] /= parts;
        TensorShape { dims }
    }

    /// Shape with the batch (leading) dimension replaced.
    pub fn with_batch(&self, batch: u64) -> TensorShape {
        let mut dims = self.dims.clone();
        if dims.is_empty() {
            dims.push(batch);
        } else {
            dims[0] = batch;
        }
        TensorShape { dims }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bytes_accounts_for_dtype() {
        let s = TensorShape::new(vec![8, 512, 1280]);
        assert_eq!(s.num_elements(), 8 * 512 * 1280);
        assert_eq!(s.bytes(DType::F32), 8 * 512 * 1280 * 4);
        assert_eq!(s.bytes(DType::F16), 8 * 512 * 1280 * 2);
        assert_eq!(s.bytes(DType::U8), 8 * 512 * 1280);
    }

    #[test]
    fn split_dim_divides() {
        let s = TensorShape::new(vec![8, 512, 1280]);
        let t = s.split_dim(2, 4);
        assert_eq!(t.dims(), &[8, 512, 320]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn split_dim_rejects_uneven() {
        TensorShape::new(vec![8, 3]).split_dim(1, 2);
    }

    #[test]
    fn with_batch_replaces_leading_dim() {
        let s = TensorShape::new(vec![8, 512]);
        assert_eq!(s.with_batch(32).dims(), &[32, 512]);
        assert_eq!(
            TensorShape::new(Vec::<u64>::new()).with_batch(4).dims(),
            &[4]
        );
    }

    #[test]
    fn display_is_compact() {
        let s = TensorShape::new(vec![2, 3]);
        assert_eq!(s.to_string(), "[2×3]");
    }

    proptest! {
        #[test]
        fn split_then_scale_preserves_elements(
            a in 1u64..64, b in 1u64..64, parts in prop::sample::select(vec![1u64, 2, 4, 8])
        ) {
            let s = TensorShape::new(vec![a, b * parts]);
            let t = s.split_dim(1, parts);
            prop_assert_eq!(t.num_elements() * parts, s.num_elements());
        }
    }
}
