//! Model statistics — the generator behind Table 2.

use crate::zoo::ModelSpec;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a model, as reported in Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Model display name.
    pub name: String,
    /// Transformer layer count ("Layer Num").
    pub transformer_layers: usize,
    /// Total planning units (incl. embeddings/heads).
    pub planning_units: usize,
    /// Total trainable parameters.
    pub param_count: u64,
    /// Parameter bytes at model precision.
    pub param_bytes: u64,
    /// Stashed activation bytes per sample.
    pub activation_bytes_per_sample: u64,
    /// Forward FLOPs per sample.
    pub forward_flops_per_sample: f64,
}

impl ModelStats {
    /// Compute statistics for a model.
    pub fn of(model: &ModelSpec) -> Self {
        ModelStats {
            name: model.name.clone(),
            transformer_layers: model.transformer_layer_count(),
            planning_units: model.n_layers(),
            param_count: model.total_param_count(),
            param_bytes: model.total_param_bytes(),
            activation_bytes_per_sample: model.activation_bytes_per_sample(),
            forward_flops_per_sample: model.forward_flops_per_sample(),
        }
    }

    /// Parameters in millions (Table 2 prints "672M").
    pub fn params_millions(&self) -> f64 {
        self.param_count as f64 / 1e6
    }

    /// Activation size in decimal MB (Table 2 prints "3149.39MB").
    pub fn activation_mb(&self) -> f64 {
        self.activation_bytes_per_sample as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::PaperModel;

    #[test]
    fn stats_are_consistent_with_the_spec() {
        let spec = PaperModel::VitHuge32.spec();
        let stats = ModelStats::of(&spec);
        assert_eq!(stats.param_count, spec.total_param_count());
        assert_eq!(
            stats.activation_bytes_per_sample,
            spec.activation_bytes_per_sample()
        );
        assert_eq!(stats.transformer_layers, 32);
        assert!(stats.planning_units > stats.transformer_layers);
        assert!(stats.params_millions() > 600.0);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let stats = ModelStats::of(&PaperModel::SwinHuge32.spec());
        let json = serde_json::to_string(&stats).unwrap();
        let back: ModelStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
