//! `#[derive(Serialize, Deserialize)]` for the offline serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (the sandbox has no
//! `syn`/`quote`). Supports the shapes this workspace uses: non-generic
//! structs with named fields, tuple structs (newtype structs are
//! transparent, wider tuples are arrays), unit structs, and enums with
//! unit / newtype / struct variants (externally tagged, like real serde).
//! The field attributes honoured are `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]` (in any combination); any other
//! `#[serde(...)]` attribute is a compile error rather than a silent
//! behaviour change.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: omit the key when
    /// `path(&self.field)` is true.
    skip_if: Option<String>,
}

/// Field-level `#[serde(...)]` attribute content.
#[derive(Default)]
struct FieldAttr {
    default: bool,
    skip_if: Option<String>,
}

impl FieldAttr {
    fn merge(&mut self, other: FieldAttr) {
        self.default |= other.default;
        if other.skip_if.is_some() {
            self.skip_if = other.skip_if;
        }
    }
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), i: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    /// Skip one `#[...]` attribute if present; report any recognised
    /// `serde(...)` content and reject unrecognised `serde(...)` content.
    fn skip_attr(&mut self) -> Option<FieldAttr> {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
            _ => return None,
        }
        self.bump();
        let group = match self.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde derive: expected [...] after '#', got {other:?}"),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde = matches!(
            inner.first(),
            Some(TokenTree::Ident(id)) if id.to_string() == "serde"
        );
        if !is_serde {
            return Some(FieldAttr::default());
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => panic!("serde derive: malformed #[serde ...] attribute: {other:?}"),
        };
        let toks: Vec<TokenTree> = args.into_iter().collect();
        let mut attr = FieldAttr::default();
        let mut i = 0usize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    attr.default = true;
                    i += 1;
                }
                TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                    let lit = match (toks.get(i + 1), toks.get(i + 2)) {
                        (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                            if p.as_char() == '=' =>
                        {
                            l.to_string()
                        }
                        other => panic!(
                            "serde derive stub: malformed skip_serializing_if: {other:?}"
                        ),
                    };
                    // The literal arrives with its surrounding quotes.
                    attr.skip_if = Some(lit.trim_matches('"').to_string());
                    i += 3;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => panic!(
                    "serde derive stub: unsupported #[serde(...)] token {other:?} — only \
                     `default` and `skip_serializing_if = \"path\"` are implemented"
                ),
            }
        }
        Some(attr)
    }

    /// Skip attributes (merging any recognised `serde(...)` content), then
    /// skip a visibility qualifier if present.
    fn skip_attrs_and_vis(&mut self) -> FieldAttr {
        let mut attr = FieldAttr::default();
        while let Some(a) = self.skip_attr() {
            attr.merge(a);
        }
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.bump();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.bump();
                    }
                }
            }
        }
        attr
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }

    /// Skip a type expression up to a top-level ',' (consumed) or the end,
    /// tracking angle-bracket depth so `Map<K, V>` stays one field.
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: expected enum body, got {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    }
}

fn parse_named_fields(body: TokenStream) -> Fields {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attr = c.skip_attrs_and_vis();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("field name");
        match c.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':' after field `{name}`, got {other:?}"),
        }
        c.skip_type();
        fields.push(Field {
            name,
            default: attr.default,
            skip_if: attr.skip_if,
        });
    }
    Fields::Named(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0usize;
    while !c.at_end() {
        c.skip_attrs_and_vis();
        if c.at_end() {
            break;
        }
        c.skip_type();
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs_and_vis();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.bump();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.bump();
                f
            }
            _ => Fields::Unit,
        };
        // Discriminant (`= expr`) or trailing comma.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.bump();
                break;
            }
            c.bump();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn named_to_map(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut __m = ::serde::value::Map::new(); ");
    for f in fields {
        let insert = format!(
            "__m.insert(\"{n}\", ::serde::Serialize::__to_value(&{a})); ",
            n = f.name,
            a = access(&f.name)
        );
        match &f.skip_if {
            Some(path) => out.push_str(&format!(
                "if !{path}(&{a}) {{ {insert} }} ",
                a = access(&f.name)
            )),
            None => out.push_str(&insert),
        }
    }
    out.push_str("::serde::value::Value::Object(__m) }");
    out
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::value::Value::Null".to_string(),
                Fields::Named(fs) => named_to_map(fs, &|f| format!("self.{f}")),
                Fields::Tuple(1) => {
                    "::serde::Serialize::__to_value(&self.0)".to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::__to_value(&self.{i})"))
                        .collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()), "
                    )),
                    Fields::Named(fs) => {
                        let pat: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let inner = named_to_map(fs, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ \
                               let __inner = {inner}; \
                               let mut __outer = ::serde::value::Map::new(); \
                               __outer.insert(\"{vn}\", __inner); \
                               ::serde::value::Value::Object(__outer) }}, ",
                            pat = pat.join(", ")
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__t{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::__to_value(__t0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::__to_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ \
                               let __inner = {inner}; \
                               let mut __outer = ::serde::value::Map::new(); \
                               __outer.insert(\"{vn}\", __inner); \
                               ::serde::value::Value::Object(__outer) }}, ",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn __to_value(&self) -> ::serde::value::Value {{ {body} }} \
         }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn named_from_map(fields: &[Field], map_expr: &str, ty: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let getter = if f.default { "get_field_or_default" } else { "get_field" };
            format!(
                "{n}: ::serde::__private::{getter}({map_expr}, \"{n}\", \"{ty}\")?",
                n = f.name
            )
        })
        .collect();
    inits.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => format!(
                    "let __m = ::serde::__private::expect_object(__v, \"{name}\")?; \
                     ::std::result::Result::Ok({name} {{ {inits} }})",
                    inits = named_from_map(fs, "__m", name)
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::__from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::__from_value(&__a[{i}])?"))
                        .collect();
                    format!(
                        "let __a = __v.as_array().ok_or_else(|| \
                           ::serde::Error(format!(\"expected an array for {name}\")))?; \
                         if __a.len() != {n} {{ \
                           return ::std::result::Result::Err(::serde::Error(format!( \
                             \"expected {n} elements for {name}, got {{}}\", __a.len()))); }} \
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}), "
                    )),
                    Fields::Named(fs) => {
                        let ty = format!("{name}::{vn}");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let __m2 = ::serde::__private::expect_object(__inner, \"{ty}\")?; \
                               ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }}, ",
                            inits = named_from_map(fs, "__m2", &ty)
                        ));
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}( \
                           ::serde::Deserialize::__from_value(__inner)?)), "
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::__from_value(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let __a = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error(format!(\"expected an array for {name}::{vn}\")))?; \
                               if __a.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::Error(format!( \
                                   \"expected {n} elements for {name}::{vn}\"))); }} \
                               ::std::result::Result::Ok({name}::{vn}({items})) }}, ",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{ \
                   ::serde::value::Value::String(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => ::std::result::Result::Err(::serde::Error(format!( \
                       \"unknown variant `{{__other}}` for {name}\"))), \
                   }}, \
                   ::serde::value::Value::Object(__m) => {{ \
                     let (__k, __inner) = __m.first().ok_or_else(|| \
                       ::serde::Error(format!(\"empty object for enum {name}\")))?; \
                     match __k.as_str() {{ \
                       {data_arms} \
                       __other => ::std::result::Result::Err(::serde::Error(format!( \
                         \"unknown variant `{{__other}}` for {name}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::Error(format!( \
                     \"expected a string or object for enum {name}, got {{__other:?}}\"))), \
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn __from_value(__v: &::serde::value::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
