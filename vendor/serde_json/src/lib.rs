//! Offline subset of `serde_json` (see the `serde` stub for context).
//!
//! Covers the workspace's surface: `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `from_value`, and the [`Value`] tree with its
//! accessor/indexing API (re-exported from the serde stub, where derived
//! impls produce it).

pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// JSON error (message + kind), convertible to `std::io::Error` so
/// `fs::write(path, serde_json::to_string_pretty(v)?)` works with `?`.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialise to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.__to_value().render_compact())
}

/// Serialise to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.__to_value().render_pretty())
}

/// Serialise into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.__to_value())
}

/// Deserialise from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = serde::value::parse(s).map_err(Error::new)?;
    T::__from_value(&value).map_err(|e| Error::new(e.0))
}

/// Deserialise from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::__from_value(&value).map_err(|e| Error::new(e.0))
}

/// `json!`-lite: only the forms the workspace needs (null, literals,
/// arrays, objects with string keys).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([$($item:tt),* $(,)?]) => {
        $crate::Value::Array(vec![$($crate::json!($item)),*])
    };
    ({$($key:literal : $val:tt),* $(,)?}) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $(__m.insert($key, $crate::json!($val));)*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! literal")
    };
}
