//! Strategy trait + combinators for the proptest stub.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values. `sample` returns `None` when a filter rejects
/// the draw (the runner retries with fresh randomness).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Keep only values satisfying `pred` (rejection sampling).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Transform generated values.
    fn prop_map<F, U>(self, map: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, map }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Erase a strategy into a [`BoxedStrategy`] (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.sample(rng)?;
        if (self.pred)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    map: F,
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.map)
    }
}

/// Uniform choice among boxed arms (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn from_arms(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

// -- numeric ranges ---------------------------------------------------------

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.unit_f64() as $t;
                Some(self.start + (self.end - self.start) * u)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                Some(lo + (hi - lo) * u)
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

// -- tuples -----------------------------------------------------------------

macro_rules! strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$n.sample(rng)?,)+))
            }
        }
    )*};
}
strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
