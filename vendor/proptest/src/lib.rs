//! Offline subset of `proptest`.
//!
//! Same testing model — `proptest! { fn prop(x in strategy) { ... } }` runs
//! the body over many sampled inputs — but with a deterministic RNG (seeded
//! from the test's `file!()`/`line!()`), rejection-based filtering, and **no
//! shrinking**: a failing case panics with the sampled inputs via the plain
//! `assert!` machinery. Covers the strategy combinators this workspace
//! uses: ranges, `Just`, `prop_oneof!`, `any`, tuples,
//! `prop::collection::vec`, `prop::sample::select`, `.prop_filter`,
//! `.prop_map`.

pub mod strategy;

pub mod rng {
    /// SplitMix64 — deterministic, seeded per test site.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(file: &str, line: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in file.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= u64::from(line);
            h = h.wrapping_mul(0x1000_0000_01b3);
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod config {
    /// Runner configuration (subset: only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Upper bound on rejected samples before giving up.
        pub max_global_rejects: u32,
        /// Accepted-but-ignored knobs kept for struct-update compatibility.
        pub max_shrink_iters: u32,
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform choice from a non-empty list.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let idx = rng.below(self.options.len() as u64) as usize;
            Some(self.options[idx].clone())
        }
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, broad magnitude range.
            let mag = rng.unit_f64() * 1e12;
            if rng.next_u64() & 1 == 1 { -mag } else { mag }
        }
    }

    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// `any::<T>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection::vec(...)`, `prop::sample::select(...)` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// `prop_assert!` — no shrink machinery, so a failure is a plain panic with
/// the condition text (the harness prints the sampled inputs' Debug via the
/// macro expansion in `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::from_arms(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    // Leading `#![proptest_config(...)]`.
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! {
            ($crate::config::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) } => {};
    {
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    } => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::config::ProptestConfig = $cfg;
            let __strategy = ($($strategy,)+);
            let mut __rng = $crate::rng::TestRng::deterministic(file!(), line!());
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __cfg.cases {
                match $crate::strategy::Strategy::sample(&__strategy, &mut __rng) {
                    None => {
                        __rejected += 1;
                        if __rejected > __cfg.max_global_rejects {
                            panic!(
                                "proptest stub: too many rejected samples in {} \
                                 ({} accepted, {} rejected)",
                                stringify!($name), __accepted, __rejected
                            );
                        }
                    }
                    Some(__value) => {
                        let __debug = format!("{:?}", __value);
                        let __result = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(|| {
                                let ($($pat,)+) = __value;
                                $body
                            })
                        );
                        if let Err(__panic) = __result {
                            eprintln!(
                                "proptest case failed in {}: inputs = {}",
                                stringify!($name), __debug
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                        __accepted += 1;
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
