//! Offline subset of `criterion`.
//!
//! Same bench-definition surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `black_box`) with a much simpler engine: a short warm-up, then
//! `sample_size` timed samples (each one closure call) inside a measurement
//! -time budget, reporting min/mean/max to stdout. No plots, no statistics,
//! no `target/criterion` state.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a bench name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Throughput annotation (accepted, echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_benchmark_id().id;
        run_bench(&full, self.warm_up, self.measurement, self.sample_size, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_bench(
            &full,
            self.warm_up,
            self.measurement,
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Per-bench measurement handle.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
    max_samples: usize,
    warm_up: Duration,
}

impl Bencher {
    /// Time `f` repeatedly: warm-up until the warm-up budget is spent, then
    /// one sample per call until `sample_size` samples or the measurement
    /// window closes (always at least one sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        loop {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.max_samples || Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// `iter_batched`-style setup/measure split (setup excluded from timing).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            let input = setup();
            black_box(f(input));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.max_samples || Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        deadline: Instant::now() + warm_up + measurement,
        max_samples: sample_size,
        warm_up,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let extra = match throughput {
        Some(Throughput::Elements(e)) if mean > Duration::ZERO => {
            format!("  thrpt: {:.1} elem/s", e as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(b) | Throughput::BytesDecimal(b))
            if mean > Duration::ZERO =>
        {
            format!("  thrpt: {:.1} B/s", b as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name}  time: [{} {} {}]{extra}",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// `criterion_group!(name, target1, target2, ...)` — also accepts the
/// `config = ...` long form (the config expression is evaluated and used).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
