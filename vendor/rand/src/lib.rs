//! Offline subset of `rand`: the `Rng`/`SeedableRng` trait surface this
//! workspace uses (`StdRng::seed_from_u64` + `gen_range` over integer and
//! float ranges). The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic for a given seed, which is all the simulator and the
//! synthetic workloads rely on (they never compare against upstream rand's
//! exact stream).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling interface (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Like rand 0.8: the output type is an independent parameter so
    /// untyped float/int range literals infer from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly to produce `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                (lo as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                // Include the upper endpoint by scaling over 2^53 − 1.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator (stands in for rand's ChaCha12-based StdRng;
    /// deterministic per seed, not reproducing upstream's exact stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs determinism, not a distinct
    /// small-footprint generator.
    pub type SmallRng = StdRng;
}

/// A `thread_rng`-alike: deterministic per thread (seeded from the thread's
/// spawn order), since the sandbox favours reproducibility over entropy.
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(COUNTER.fetch_add(1, Ordering::Relaxed))
}
