//! Offline subset of `parking_lot`: `Mutex`/`RwLock`/`Condvar` with the
//! non-poisoning API, implemented over `std::sync` (a poisoned std lock is
//! recovered with `into_inner`, matching parking_lot's "panics don't poison"
//! semantics closely enough for this workspace).

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free std translation: temporarily move the std guard out,
        // wait, and put the woken guard back.
        take_mut_guard(&mut guard.0, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

fn take_mut_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // std::sync::MutexGuard is not Default, so emulate take_mut with a
    // ptr read/write pair; abort if `f` unwinds mid-move (a panic here
    // would otherwise double-drop the guard).
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnDrop;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}
