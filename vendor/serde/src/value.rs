//! The self-describing value tree shared by the `serde` and `serde_json`
//! stubs: JSON data model, order-preserving object map, renderer, parser.

/// A JSON value, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (self, other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => {
                i64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            _ => false,
        }
    }
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        })
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

/// An insertion-order-preserving string-keyed map (what real `serde_json`
/// produces for derived structs: fields render in declaration order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// First entry, if any (handy for externally-tagged enums).
    pub fn first(&self) -> Option<(&String, &Value)> {
        self.entries.first().map(|(k, v)| (k, v))
    }
}

impl Value {
    pub fn from_u64(n: u64) -> Value {
        Value::Number(Number::PosInt(n))
    }

    pub fn from_i64(n: i64) -> Value {
        if let Ok(u) = u64::try_from(n) {
            Value::Number(Number::PosInt(u))
        } else {
            Value::Number(Number::NegInt(n))
        }
    }

    /// Non-finite floats become `null`, like real `serde_json`.
    pub fn from_f64(f: f64) -> Value {
        if f.is_finite() {
            Value::Number(Number::Float(f))
        } else {
            Value::Null
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Widest integer view (for lossless integer deserialisation).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as i128),
            Value::Number(Number::NegInt(n)) => Some(*n as i128),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    // -- rendering ---------------------------------------------------------

    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
            Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
            Value::Number(Number::Float(f)) => {
                // `{:?}` is shortest-round-trip and always keeps a decimal
                // point or exponent, matching serde_json's Ryu output.
                out.push_str(&format!("{f:?}"));
            }
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- indexing ---------------------------------------------------------------

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// -- literal comparisons (assert_eq!(value["k"], "text") etc.) --------------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}

macro_rules! eq_int {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i128() == Some(*other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(i8 i16 i32 i64 u8 u16 u32 u64 usize isize);

// -- parsing ----------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.bump().ok_or("truncated \\u escape")?;
            code = code * 16
                + (d as char)
                    .to_digit(16)
                    .ok_or("invalid hex digit in \\u escape")?;
        }
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}
