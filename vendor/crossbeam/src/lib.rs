//! Offline subset of `crossbeam`: [`scope`] (scoped threads, backed by
//! `std::thread::scope`) and [`deque::Injector`] (a FIFO work queue with the
//! `Steal` protocol, backed by a mutexed `VecDeque`).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as stdthread;

    /// A scope handle mirroring `crossbeam_utils::thread::Scope`.
    ///
    /// Wraps `std::thread::Scope`, which is `Sync`, so the handle can be
    /// passed into spawned threads (crossbeam hands each spawned closure a
    /// `&Scope` for nested spawns).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. Like crossbeam, the closure receives the
        /// scope handle so it can spawn further work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning borrowing threads; returns `Err` with the
    /// panic payload if the scope closure or an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// A FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            let mut q = match self.queue.try_lock() {
                Ok(q) => q,
                Err(std::sync::TryLockError::WouldBlock) => return Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            };
            match q.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }
}
