//! `galvatron-plan` — plan (and optionally simulate) the training of a
//! Transformer on a GPU cluster.
//!
//! ```text
//! galvatron-plan --model vit-huge-32 --cluster rtx-titan-8 --budget-gb 8
//! galvatron-plan --model bert-huge-32 --cluster rtx-titan-16 --budget-gb 16 \
//!     --simulate --trace timeline.json
//! galvatron-plan --model bert-xhuge --cluster a100-64 --budget-gb 16 \
//!     --restrict dp-pp --max-batch 128
//! ```

use galvatron::prelude::*;
use galvatron_hetero::enumerate_deployments;
use galvatron_obs::write_spans;
use galvatron_strategy::Paradigm;
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    model: String,
    cluster: String,
    budget_gb: u64,
    max_batch: usize,
    restrict: Option<String>,
    objective: Objective,
    recompute: RecomputeMode,
    partitioner: PipelinePartitioner,
    jobs: usize,
    simulate: bool,
    explain: bool,
    trace_path: Option<String>,
    json_path: Option<String>,
    metrics_path: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            model: "bert-huge-32".to_string(),
            cluster: "rtx-titan-8".to_string(),
            budget_gb: 16,
            max_batch: 512,
            restrict: None,
            objective: Objective::Time,
            recompute: RecomputeMode::Off,
            partitioner: PipelinePartitioner::default(),
            jobs: 0,
            simulate: false,
            explain: false,
            trace_path: None,
            json_path: None,
            metrics_path: None,
        }
    }
}

const USAGE: &str = "\
galvatron-plan: automatic hybrid-parallelism planning for Transformer training

USAGE:
    galvatron-plan [OPTIONS]

OPTIONS:
    --model <NAME>       bert-huge-32|bert-huge-48|bert-xhuge|vit-huge-32|
                         vit-huge-48|vit-xhuge|t5-large-32|t5-large-48|
                         swin-huge-32|swin-huge-48|gpt2-xl  [bert-huge-32]
    --cluster <NAME>     rtx-titan-8 | rtx-titan-16 | a100-64 | a100-rtx-16
                         (a100-rtx-16: one priced 8-GPU A100 island plus one
                         priced 8-GPU RTX TITAN island)  [rtx-titan-8]
    --budget-gb <N>      per-device memory budget in GB  [16]
    --max-batch <N>      largest global batch to explore  [512]
    --restrict <SPACE>   limit the search space: dp-tp | dp-pp
    --objective <OBJ>    time (max throughput on the full cluster) | cost
                         (max throughput per dollar over island-aligned
                         sub-cluster deployments)  [time]
    --recompute <MODE>   off (stash every activation) | on (checkpoint every
                         layer) | auto (per-layer DP decision — the BMW
                         fifth dimension)  [off]
    --partitioner <P>    pipeline stage split: flops | layers | params |
                         activation | balanced (peak-memory-balanced BMW
                         guideline)  [flops]
    --jobs <N>           planner worker threads (0 = all cores)  [0]
    --simulate           execute the plan on the discrete-event simulator
    --explain            per-layer table: chosen strategy, compute/comm/memory
                         split, runner-up strategy and margin
    --trace <FILE>       with --simulate: write a Chrome-trace timeline with
                         the planner's search spans alongside (Perfetto)
    --json <FILE>        write the plan as JSON
    --metrics-out <FILE> write the telemetry registry as Prometheus text
    -h, --help           print this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--model" => opts.model = value("--model")?,
            "--cluster" => opts.cluster = value("--cluster")?,
            "--budget-gb" => {
                opts.budget_gb = value("--budget-gb")?
                    .parse()
                    .map_err(|_| "--budget-gb expects an integer".to_string())?
            }
            "--max-batch" => {
                opts.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|_| "--max-batch expects an integer".to_string())?
            }
            "--restrict" => opts.restrict = Some(value("--restrict")?),
            "--objective" => {
                opts.objective = match value("--objective")?.as_str() {
                    "time" => Objective::Time,
                    "cost" => Objective::Cost,
                    other => return Err(format!("--objective must be time or cost, got {other}")),
                }
            }
            "--recompute" => {
                let v = value("--recompute")?;
                opts.recompute = RecomputeMode::parse(&v)
                    .ok_or_else(|| format!("--recompute must be off, on or auto, got {v}"))?
            }
            "--partitioner" => {
                opts.partitioner = match value("--partitioner")?.as_str() {
                    "flops" => PipelinePartitioner::ByFlops,
                    "layers" => PipelinePartitioner::ByLayerCount,
                    "params" => PipelinePartitioner::ByParams,
                    "activation" => PipelinePartitioner::ByActivation,
                    "balanced" => PipelinePartitioner::MemoryBalanced,
                    other => {
                        return Err(format!(
                            "--partitioner must be flops, layers, params, activation \
                             or balanced, got {other}"
                        ))
                    }
                }
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects an integer".to_string())?
            }
            "--simulate" => opts.simulate = true,
            "--explain" => opts.explain = true,
            "--trace" => opts.trace_path = Some(value("--trace")?),
            "--json" => opts.json_path = Some(value("--json")?),
            "--metrics-out" => opts.metrics_path = Some(value("--metrics-out")?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if let Some(r) = &opts.restrict {
        if r != "dp-tp" && r != "dp-pp" {
            return Err(format!("--restrict must be dp-tp or dp-pp, got {r}"));
        }
    }
    Ok(opts)
}

fn model_by_name(name: &str) -> Option<ModelSpec> {
    let paper = match name {
        "bert-huge-32" => Some(PaperModel::BertHuge32),
        "bert-huge-48" => Some(PaperModel::BertHuge48),
        "bert-xhuge" => Some(PaperModel::BertXHuge),
        "vit-huge-32" => Some(PaperModel::VitHuge32),
        "vit-huge-48" => Some(PaperModel::VitHuge48),
        "vit-xhuge" => Some(PaperModel::VitXHuge),
        "t5-large-32" => Some(PaperModel::T5Large32),
        "t5-large-48" => Some(PaperModel::T5Large48),
        "swin-huge-32" => Some(PaperModel::SwinHuge32),
        "swin-huge-48" => Some(PaperModel::SwinHuge48),
        _ => None,
    };
    if let Some(m) = paper {
        return Some(m.spec());
    }
    match name {
        "gpt2-xl" => Some(
            galvatron_model::GptConfig {
                layers: 48,
                hidden: 1600,
                heads: 25,
                seq: 1024,
                vocab: 50257,
            }
            .build("GPT2-XL"),
        ),
        _ => None,
    }
}

fn cluster_by_name(name: &str) -> Option<ClusterTopology> {
    match name {
        "rtx-titan-8" => Some(TestbedPreset::RtxTitan8.topology()),
        "rtx-titan-16" => Some(TestbedPreset::RtxTitan16.topology()),
        "a100-64" => Some(TestbedPreset::A100x64.topology()),
        "a100-rtx-16" => Some(mixed_a100_rtx_cluster(1, 1, 8)),
        _ => None,
    }
}

fn planner_for(opts: &Options) -> ParallelPlanner {
    let mut config = OptimizerConfig {
        max_batch: opts.max_batch,
        sub_step_batches: true,
        recompute: opts.recompute,
        partitioner: opts.partitioner,
        ..OptimizerConfig::default()
    };
    match opts.restrict.as_deref() {
        Some("dp-tp") => {
            config.paradigms = vec![Paradigm::Data, Paradigm::Tensor];
            config.allow_pipeline = false;
            config.origin = "Galvatron (DP+TP)".to_string();
        }
        Some("dp-pp") => {
            config.paradigms = vec![Paradigm::Data];
            config.origin = "Galvatron (DP+PP)".to_string();
        }
        _ => {}
    }
    ParallelPlanner::new(PlannerConfig {
        optimizer: config,
        jobs: opts.jobs,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let Some(model) = model_by_name(&opts.model) else {
        eprintln!("error: unknown model {:?}\n\n{USAGE}", opts.model);
        return ExitCode::from(2);
    };
    let Some(cluster) = cluster_by_name(&opts.cluster) else {
        eprintln!("error: unknown cluster {:?}\n\n{USAGE}", opts.cluster);
        return ExitCode::from(2);
    };

    println!(
        "model    {} ({:.1}M params, {:.1} MB act/sample)",
        model.name,
        model.total_param_count() as f64 / 1e6,
        model.activation_bytes_per_sample() as f64 / 1e6
    );
    // Homogeneous clusters read "8 × RTX TITAN"; mixed ones spell out the
    // island composition ("A100x8+RTX TITANx8") instead of misattributing
    // every device to the first island's type.
    let cluster_desc = if cluster.is_heterogeneous() {
        galvatron_hetero::topology_mix(&cluster)
    } else {
        format!("{} × {}", cluster.n_devices(), cluster.gpu().name)
    };
    println!(
        "cluster  {} ({} budget: {} GB/device)",
        cluster_desc, opts.cluster, opts.budget_gb
    );

    // One telemetry handle for the whole invocation: the planner's search
    // spans and the simulated timeline end up in one Perfetto file, the
    // metrics registry in one Prometheus snapshot.
    let registry = Arc::new(MetricsRegistry::new());
    let span_sink = Arc::new(ChromeSpanSink::new());
    let obs = Obs::new(registry.clone(), span_sink.clone());

    let planner = planner_for(&opts).with_obs(obs.clone());
    // Under `--objective cost` the plan may land on a sub-cluster
    // deployment; everything downstream (explain, simulate) runs against
    // the topology the plan was actually made for.
    let (outcome, cluster) = match opts.objective {
        Objective::Time => match planner.optimize(&model, &cluster, opts.budget_gb * GIB) {
            Ok(Some(outcome)) => (outcome, cluster),
            Ok(None) => {
                eprintln!(
                    "no feasible plan: even the smallest batch exceeds {} GB/device",
                    opts.budget_gb
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("planning failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        Objective::Cost => {
            let hetero =
                HeteroPlanner::new(planner.config().optimizer.clone()).with_obs(obs.clone());
            match hetero.plan(&model, &cluster, opts.budget_gb * GIB, Objective::Cost) {
                Ok(Some(h)) => {
                    println!(
                        "deployment  {} ({} devices, ${:.2}/h, {:.0} samples/$)",
                        h.mix, h.n_devices, h.price_per_hour, h.samples_per_dollar
                    );
                    let deployed = enumerate_deployments(&cluster)
                        .into_iter()
                        .find(|d| d.first_island == h.first_island && d.n_islands == h.n_islands)
                        .map(|d| d.topology)
                        .unwrap_or(cluster);
                    (h.outcome, deployed)
                }
                Ok(None) => {
                    eprintln!(
                        "no feasible plan on any deployment: even the smallest batch \
                         exceeds {} GB/device",
                        opts.budget_gb
                    );
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("planning failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    println!(
        "\nestimated  {:.2} samples/s  ({:.1} ms/iteration)",
        outcome.throughput_samples_per_sec,
        outcome.iteration_time * 1e3
    );
    println!(
        "search     {} batch sizes, {} DP runs, {:.0} ms ({} workers)",
        outcome.stats.batches_explored,
        outcome.stats.dp_invocations,
        outcome.stats.search_seconds * 1e3,
        planner.effective_jobs()
    );
    let hit_rate = outcome
        .stats
        .cache_hit_rate()
        .map(|r| format!("{:.0}% cache hits", r * 100.0))
        .unwrap_or_else(|| "no cache".to_string());
    println!(
        "           {} candidates evaluated ({:.0} ms DP time, slowest {:.1} ms), {} pruned, {}",
        outcome.stats.candidate_seconds.len(),
        outcome.stats.dp_seconds * 1e3,
        outcome.stats.max_candidate_seconds() * 1e3,
        outcome.stats.pruned_candidates,
        hit_rate
    );
    println!("\n{}", outcome.plan.summary());

    if opts.explain {
        let estimator = CostEstimator::new(
            cluster.clone(),
            planner.config().optimizer.estimator.clone(),
        );
        match explain_plan(
            &estimator,
            &model,
            &outcome.plan,
            &planner.config().optimizer,
        ) {
            Ok(explanation) => println!("\n{}", explanation.render()),
            Err(e) => {
                eprintln!("could not explain the plan: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &opts.json_path {
        match serde_json::to_string_pretty(&outcome.plan) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("plan written to {path}");
            }
            Err(e) => eprintln!("could not serialise plan: {e}"),
        }
    }

    if opts.simulate {
        let sim = Simulator::new(
            cluster.clone(),
            SimulatorConfig::default().with_budget(opts.budget_gb * GIB),
        )
        .with_obs(obs.clone());
        match sim.execute_traced(&model, &outcome.plan) {
            Ok((report, trace)) => {
                println!(
                    "simulated  {:.2} samples/s  (peak {:.2} GB/device{})",
                    report.throughput,
                    report.peak_memory() as f64 / GIB as f64,
                    if report.oom { ", OOM!" } else { "" }
                );
                if let Some(path) = &opts.trace_path {
                    // One Perfetto file: the simulated timeline as process
                    // 0, the planner's search spans as process 1.
                    let mut writer = ChromeTraceWriter::new();
                    galvatron_sim::write_trace_metadata(
                        &mut writer,
                        &trace,
                        0,
                        &format!(
                            "simulated iteration: {}",
                            outcome.plan.summary().lines().next().unwrap_or_default()
                        ),
                    );
                    galvatron_sim::write_trace_events(&mut writer, &trace, 0);
                    writer.process_name(1, "planner search");
                    write_spans(&mut writer, 1, 0, &span_sink.records());
                    if let Err(e) = std::fs::write(path, writer.finish()) {
                        eprintln!("could not write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("timeline written to {path} (open in chrome://tracing)");
                }
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &opts.metrics_path {
        if let Err(e) = std::fs::write(path, registry.snapshot().to_prometheus()) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn defaults_apply() {
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn full_argument_set_parses() {
        let opts = parse_args(&argv(
            "--model vit-huge-32 --cluster a100-64 --budget-gb 8 --max-batch 64 \
             --restrict dp-tp --recompute auto --partitioner balanced --simulate \
             --explain --trace t.json --json p.json --metrics-out m.prom",
        ))
        .unwrap();
        assert_eq!(opts.model, "vit-huge-32");
        assert_eq!(opts.cluster, "a100-64");
        assert_eq!(opts.budget_gb, 8);
        assert_eq!(opts.max_batch, 64);
        assert_eq!(opts.restrict.as_deref(), Some("dp-tp"));
        assert_eq!(opts.recompute, RecomputeMode::Auto);
        assert_eq!(opts.partitioner, PipelinePartitioner::MemoryBalanced);
        assert!(opts.simulate);
        assert!(opts.explain);
        assert_eq!(opts.trace_path.as_deref(), Some("t.json"));
        assert_eq!(opts.json_path.as_deref(), Some("p.json"));
        assert_eq!(opts.metrics_path.as_deref(), Some("m.prom"));
    }

    #[test]
    fn bad_arguments_error() {
        assert!(parse_args(&argv("--budget-gb nope")).is_err());
        assert!(parse_args(&argv("--mystery")).is_err());
        assert!(parse_args(&argv("--restrict everything")).is_err());
        assert!(parse_args(&argv("--model")).is_err());
        assert!(parse_args(&argv("--metrics-out")).is_err());
        assert!(parse_args(&argv("--recompute sometimes")).is_err());
        assert!(parse_args(&argv("--partitioner vibes")).is_err());
    }

    #[test]
    fn bmw_flags_configure_the_optimizer() {
        // The defaults stay bit-identical to the historical planner.
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts.recompute, RecomputeMode::Off);
        assert_eq!(opts.partitioner, PipelinePartitioner::ByFlops);
        let planner = planner_for(&opts);
        assert_eq!(planner.config().optimizer.recompute, RecomputeMode::Off);

        let opts = parse_args(&argv("--recompute on --partitioner params")).unwrap();
        let planner = planner_for(&opts);
        assert_eq!(planner.config().optimizer.recompute, RecomputeMode::On);
        assert_eq!(
            planner.config().optimizer.partitioner,
            PipelinePartitioner::ByParams
        );

        let opts = parse_args(&argv("--recompute auto --partitioner balanced")).unwrap();
        let planner = planner_for(&opts);
        assert_eq!(planner.config().optimizer.recompute, RecomputeMode::Auto);
        assert_eq!(
            planner.config().optimizer.partitioner,
            PipelinePartitioner::MemoryBalanced
        );
    }

    #[test]
    fn model_and_cluster_lookups() {
        assert!(model_by_name("swin-huge-48").is_some());
        assert!(model_by_name("gpt2-xl").is_some());
        assert!(model_by_name("resnet").is_none());
        assert!(cluster_by_name("rtx-titan-16").is_some());
        assert!(cluster_by_name("tpu-pod").is_none());
        let mixed = cluster_by_name("a100-rtx-16").unwrap();
        assert!(mixed.is_heterogeneous());
        assert_eq!(mixed.n_devices(), 16);
        assert!(mixed.price_per_hour() > 0.0);
    }

    #[test]
    fn objective_flag_parses_and_rejects_nonsense() {
        assert_eq!(parse_args(&[]).unwrap().objective, Objective::Time);
        assert_eq!(
            parse_args(&argv("--objective cost")).unwrap().objective,
            Objective::Cost
        );
        assert_eq!(
            parse_args(&argv("--objective time")).unwrap().objective,
            Objective::Time
        );
        assert!(parse_args(&argv("--objective cheapest")).is_err());
        assert!(parse_args(&argv("--objective")).is_err());
    }

    #[test]
    fn restriction_configures_the_optimizer() {
        let opts = parse_args(&argv("--restrict dp-pp")).unwrap();
        let planner = planner_for(&opts);
        assert_eq!(planner.config().optimizer.paradigms, vec![Paradigm::Data]);
        assert!(planner.config().optimizer.allow_pipeline);
        let opts = parse_args(&argv("--restrict dp-tp")).unwrap();
        let planner = planner_for(&opts);
        assert!(!planner.config().optimizer.allow_pipeline);
    }

    #[test]
    fn jobs_flag_parses_and_defaults_to_all_cores() {
        let opts = parse_args(&argv("--jobs 4")).unwrap();
        assert_eq!(opts.jobs, 4);
        assert_eq!(planner_for(&opts).effective_jobs(), 4);
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts.jobs, 0);
        assert!(planner_for(&opts).effective_jobs() >= 1);
    }
}
