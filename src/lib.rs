//! # Galvatron
//!
//! A Rust reproduction of *"Galvatron: Efficient Transformer Training over
//! Multiple GPUs Using Automatic Parallelism"* (PVLDB 16(3), 2022).
//!
//! Galvatron automatically finds the most efficient **hybrid parallelism**
//! strategy — a per-layer composition of data parallelism (DP), sharded data
//! parallelism (SDP/ZeRO-3), tensor parallelism (TP) and pipeline parallelism
//! (PP) — for training a Transformer on a GPU cluster under a device memory
//! budget.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`cluster`] — topology, interconnects, collective cost models, the
//!   communication-group pool.
//! * [`model`] — the Transformer model zoo with analytic parameter /
//!   activation / FLOP accounting (Table 2).
//! * [`obs`] — the telemetry layer: lock-cheap metrics registry
//!   (Prometheus/JSON exporters), structured spans with pluggable sinks,
//!   and the shared Chrome-trace writer.
//! * [`strategy`] — hybrid strategies, the decision-tree decomposition with
//!   Takeaways 1–3, activation layouts and Slice-Gather.
//! * [`estimator`] — the cost model, including the compute/communication
//!   overlap slowdown of §3.4.
//! * [`sim`] — a discrete-event cluster simulator standing in for real
//!   multi-GPU execution (the "measured" side of every experiment).
//! * [`core`] — the dynamic-programming search (Eq. 1) and the Algorithm 1
//!   optimization workflow.
//! * [`planner`] — the parallel planning front-end: work-stealing sweep,
//!   shared DP memoization, bound-based pruning, multi-request plan
//!   service. Same results as [`core`]'s serial optimizer, faster.
//! * [`baselines`] — the evaluated baseline planners (PyTorch DDP, Megatron
//!   TP, GPipe PP, FSDP/ZeRO-3 SDP, DeepSpeed 3D, Galvatron DP+TP / DP+PP).
//! * [`elastic`] — the elastic training runtime: deterministic fault
//!   injection, heartbeat/anomaly detection, online re-planning on the
//!   surviving topology, and state-migration costing.
//! * [`serve`] — the plan-serving daemon: JSON-lines TCP protocol,
//!   single-flight coalescing of identical in-flight requests, a
//!   byte-budget LRU response cache with warm restarts, and deterministic
//!   load shedding under a bounded queue.
//! * [`fleet`] — the replicated serving fleet: an event-driven connection
//!   layer (thousands of idle connections per replica without a thread
//!   each), consistent-hash request routing with failover, gossip cache
//!   replication between ring neighbors, and warm-join from peer
//!   snapshots.
//! * [`hetero`] — heterogeneous-cluster planning: priced device types and
//!   mixed A100/RTX-TITAN islands, a dual objective (iteration time vs
//!   **throughput per dollar** over island-aligned deployments), and the
//!   cluster advisor ("cheapest device mix that trains this model in under
//!   T hours").
//!
//! ## Quickstart
//!
//! ```
//! use galvatron::prelude::*;
//!
//! // The paper's Table 1 testbed: one node with 8 RTX TITANs on PCIe 3.0.
//! let cluster = TestbedPreset::RtxTitan8.topology();
//! let model = PaperModel::VitHuge32.spec();
//!
//! // Find the optimal hybrid plan under an 8 GiB per-device budget.
//! let optimizer = GalvatronOptimizer::new(OptimizerConfig {
//!     max_batch: 64, // keep the doctest quick; the default sweeps to 4096
//!     ..OptimizerConfig::default()
//! });
//! let best = optimizer
//!     .optimize(&model, &cluster, 8 * GIB)
//!     .expect("topology lookups succeed")
//!     .expect("a feasible plan exists");
//! assert!(best.throughput_samples_per_sec > 0.0);
//! println!("{}", best.plan.summary());
//! ```

pub use galvatron_baselines as baselines;
pub use galvatron_cluster as cluster;
pub use galvatron_core as core;
pub use galvatron_elastic as elastic;
pub use galvatron_estimator as estimator;
pub use galvatron_exec as exec;
pub use galvatron_fleet as fleet;
pub use galvatron_hetero as hetero;
pub use galvatron_model as model;
pub use galvatron_obs as obs;
pub use galvatron_planner as planner;
pub use galvatron_serve as serve;
pub use galvatron_sim as sim;
pub use galvatron_strategy as strategy;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use galvatron_baselines::{BaselinePlanner, BaselineStrategy};
    pub use galvatron_cluster::{
        island_cluster, mixed_a100_rtx_cluster, ClusterTopology, CommGroupPool, DeviceType,
        GpuSpec, Link, LinkClass, TestbedPreset, GIB, MIB,
    };
    pub use galvatron_core::{
        explain_plan, GalvatronOptimizer, OptimizeOutcome, OptimizerConfig, PipelinePartitioner,
        PlanExplanation, RecomputeMode,
    };
    pub use galvatron_elastic::{
        ElasticConfig, ElasticOutcome, ElasticRuntime, FaultEvent, FaultKind, FaultSchedule,
    };
    pub use galvatron_estimator::{CostEstimator, EstimatorConfig};
    pub use galvatron_fleet::{FleetReplica, FleetRouter, HashRing, ReplicaConfig, RouterConfig};
    pub use galvatron_hetero::{
        AdvisorQuery, AdvisorReport, ClusterAdvisor, HeteroOutcome, HeteroPlanner, Objective,
    };
    pub use galvatron_model::{ModelSpec, PaperModel};
    pub use galvatron_obs::{
        ChromeSpanSink, ChromeTraceWriter, MetricsRegistry, MetricsSnapshot, Obs, RingBufferSink,
        Span, SpanSink,
    };
    pub use galvatron_planner::{
        DpCache, ParallelPlanner, PlanRequest, PlanResponse, PlanService, PlannerConfig,
    };
    pub use galvatron_serve::{PlanClient, PlanServer, ServeConfig, ServeStats};
    pub use galvatron_sim::{ExecutionReport, Simulator, SimulatorConfig};
    pub use galvatron_strategy::{
        DecisionTreeBuilder, Paradigm, ParallelPlan, StrategyAxis, StrategySet,
    };
}
