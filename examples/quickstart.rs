//! Quickstart: find the optimal hybrid-parallelism plan for ViT-Huge on an
//! 8-GPU node with an 8 GB per-device budget, then execute it on the
//! simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use galvatron::prelude::*;

fn main() {
    // 1. Describe the hardware: the paper's Table 1 testbed — one node with
    //    eight RTX TITANs on PCIe 3.0.
    let cluster = TestbedPreset::RtxTitan8.topology();

    // 2. Pick a workload from the zoo (or build your own with
    //    `galvatron_model::BertConfig` & friends).
    let model = PaperModel::VitHuge32.spec();
    println!(
        "planning {} ({:.0}M parameters) on {} × {}",
        model.name,
        model.total_param_count() as f64 / 1e6,
        cluster.n_devices(),
        cluster.gpu().name,
    );

    // 3. Run Algorithm 1: sweep batch sizes and pipeline degrees, search
    //    per-layer hybrid strategies with the Eq. 1 dynamic program.
    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 128,
        ..OptimizerConfig::default()
    });
    let outcome = optimizer
        .optimize(&model, &cluster, 8 * GIB)
        .expect("topology lookups succeed")
        .expect("ViT-Huge fits an 8 GB budget");

    println!(
        "\nbest plan: {:.1} samples/s estimated at batch {}",
        outcome.throughput_samples_per_sec, outcome.plan.global_batch
    );
    println!("{}", outcome.plan.summary());

    // 4. "Run" the plan: the discrete-event simulator executes the full
    //    GPipe schedule with compute/communication contention and memory
    //    tracking.
    let simulator = Simulator::new(cluster, SimulatorConfig::default().with_budget(8 * GIB));
    let report = simulator
        .execute(&model, &outcome.plan)
        .expect("the chosen plan executes");
    println!(
        "simulated: {:.1} samples/s, peak memory {:.2} GiB/device, {} tasks",
        report.throughput,
        report.peak_memory() as f64 / GIB as f64,
        report.task_count,
    );
    assert!(!report.oom, "the planner respects the budget");
}
