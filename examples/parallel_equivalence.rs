//! Why is Galvatron free to pick *any* hybrid strategy per layer? Because
//! they are all semantically equivalent. This example runs the numeric
//! reference executor: one training step of an MLP stack under several
//! hybrid strategies on 8 virtual devices, comparing loss and gradients
//! against single-device execution.
//!
//! ```sh
//! cargo run --release --example parallel_equivalence
//! ```

use galvatron::exec::{execute_parallel, execute_serial, Matrix, MlpModel};
use galvatron::strategy::{DecisionTreeBuilder, ParallelPlan};

fn main() {
    let model = MlpModel::random(3, 8, 16, 2024);
    let x = Matrix::random(32, 8, 7);
    let serial = execute_serial(&model, &x);
    println!(
        "serial reference: loss {:.6} over batch {}\n",
        serial.loss,
        x.rows()
    );

    println!(
        "{:<14} {:>12} {:>16} {:>16}",
        "strategy", "loss", "max |Δoutput|", "max |Δgrad|"
    );
    for strategy in DecisionTreeBuilder::new(8).strategies().iter() {
        let plan = ParallelPlan::uniform(
            strategy.label(),
            model.n_layers(),
            8,
            strategy.clone(),
            x.rows(),
        );
        let parallel = execute_parallel(&model, &plan, &x).expect("plan executes");
        let d_out = serial.output.max_abs_diff(&parallel.output);
        let d_grad = serial
            .grads
            .iter()
            .zip(&parallel.grads)
            .map(|((s1, s2), (p1, p2))| s1.max_abs_diff(p1).max(s2.max_abs_diff(p2)))
            .fold(0.0f32, f32::max);
        println!(
            "{:<14} {:>12.6} {:>16.2e} {:>16.2e}",
            strategy.label(),
            parallel.loss,
            d_out,
            d_grad
        );
        assert!(d_grad < 1e-2, "gradient mismatch under {strategy}");
    }
    println!("\nEvery strategy reproduced the serial gradients (f32 round-off only).");
}
