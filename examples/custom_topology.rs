//! Custom and heterogeneous-bandwidth clusters (the paper's §6 future-work
//! direction): the same model planned on three different interconnect
//! fabrics. Watch *Takeaway #1* at work — as the inter-island link slows
//! down, the planner pushes pipeline cuts onto it and keeps
//! bandwidth-hungry paradigms inside the islands.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use galvatron::cluster::topology::TopologyLevel;
use galvatron::prelude::*;

fn fabric(name: &str, inter_node: Link) -> (String, ClusterTopology) {
    let topo = ClusterTopology::new(
        GpuSpec::rtx_titan(),
        16,
        vec![
            TopologyLevel {
                group_size: 4,
                link: Link::of_class(LinkClass::Pcie3),
            },
            TopologyLevel {
                group_size: 16,
                link: inter_node,
            },
        ],
    )
    .expect("valid topology");
    (name.to_string(), topo)
}

fn main() {
    let model = PaperModel::BertHuge32.spec();
    let budget = 12 * GIB;

    let fabrics = vec![
        fabric(
            "4×4, InfiniBand inter-node",
            Link::of_class(LinkClass::InfiniBand100),
        ),
        fabric(
            "4×4, 25GbE inter-node",
            Link::of_class(LinkClass::Ethernet25),
        ),
        fabric(
            "4×4, degraded 1 GB/s inter-node",
            Link::with_bandwidth(LinkClass::Ethernet25, 1.0e9),
        ),
    ];

    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 128,
        ..OptimizerConfig::default()
    });

    for (name, topo) in fabrics {
        println!("=== {name} (island size {}) ===", topo.island_size());
        match optimizer
            .optimize(&model, &topo, budget)
            .expect("topology lookups succeed")
        {
            Some(outcome) => {
                println!(
                    "{:.2} samples/s estimated, {}-way PP",
                    outcome.throughput_samples_per_sec,
                    outcome.plan.pp_degree()
                );
                println!("{}", outcome.plan.summary());

                // Verify on the simulator that the plan executes under
                // budget on this fabric too.
                let sim = Simulator::new(topo, SimulatorConfig::default().with_budget(budget));
                let report = sim.execute(&model, &outcome.plan).expect("plan executes");
                println!(
                    "simulated {:.2} samples/s, peak {:.2} GiB\n",
                    report.throughput,
                    report.peak_memory() as f64 / GIB as f64
                );
            }
            None => println!("infeasible under {} GiB\n", budget / GIB),
        }
    }
}
