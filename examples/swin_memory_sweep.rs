//! Swin Transformer's uneven layers (§5.5 / Figure 5): shallow stages have
//! huge activations and few parameters, deep stages the reverse — so the
//! optimal per-layer strategies differ across the model and shift with the
//! memory budget. This example sweeps budgets and prints the chosen
//! strategy per Swin stage, together with a synthetic-ImageNet epoch
//! estimate.
//!
//! ```sh
//! cargo run --release --example swin_memory_sweep
//! ```

use galvatron::model::workload::SyntheticDataset;
use galvatron::prelude::*;

fn main() {
    let cluster = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::SwinHuge32.spec();

    // Per-layer imbalance, quantified.
    println!("{}: per-layer parameter vs activation balance", model.name);
    let probe_layers = ["s0.enc.0", "s1.enc.0", "s2.enc.0", "s3.enc.0"];
    for name in probe_layers {
        let layer = model.layers.iter().find(|l| l.name == name).unwrap();
        println!(
            "  {:<10} {:>8.1}M params {:>8.1} MB act/sample",
            layer.name,
            layer.param_count() as f64 / 1e6,
            layer.activation_bytes_per_sample(model.dtype) as f64 / 1e6
        );
    }

    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 256,
        ..OptimizerConfig::default()
    });

    for budget_gb in [8u64, 12, 16, 20] {
        let Some(outcome) = optimizer
            .optimize(&model, &cluster, budget_gb * GIB)
            .expect("topology lookups succeed")
        else {
            println!("\n{budget_gb} GB: infeasible");
            continue;
        };
        println!(
            "\n=== {budget_gb} GB: batch {}, {:.1} samples/s estimated ===",
            outcome.plan.global_batch, outcome.throughput_samples_per_sec
        );
        // Strategy of the first encoder layer in each Swin stage.
        for name in probe_layers {
            let idx = model.layers.iter().position(|l| l.name == name).unwrap();
            let strategy = outcome.plan.strategy_of(idx).unwrap();
            let (pipeline_stage, _) = outcome.plan.stage_of(idx).unwrap();
            println!("  {name:<10} pp-stage {pipeline_stage}  {strategy}");
        }

        // Feed it a synthetic ImageNet-1K epoch to translate throughput
        // into wall-clock.
        let mut dataset = SyntheticDataset::imagenet(224, 42);
        let epoch_samples = 1_281_167u64; // ImageNet-1K train split
        let mut drawn = 0u64;
        while drawn < outcome.plan.global_batch as u64 {
            let batch = dataset.next_batch(outcome.plan.global_batch as u64);
            drawn += batch.batch_size;
        }
        let epoch_seconds = epoch_samples as f64 / outcome.throughput_samples_per_sec;
        println!(
            "  synthetic ImageNet epoch: {:.1} min ({} samples)",
            epoch_seconds / 60.0,
            epoch_samples
        );
    }
}
