//! Plan a decoder-only GPT model (an architecture beyond the paper's zoo),
//! simulate one iteration, and export the execution timeline as a Chrome
//! trace — open the output in `chrome://tracing` or Perfetto to see the
//! GPipe schedule, the flush barrier, and gradient all-reduces overlapping
//! backward compute.
//!
//! ```sh
//! cargo run --release --example gpt_timeline
//! # then load /tmp/gpt_timeline.json in chrome://tracing
//! ```

use galvatron::model::GptConfig;
use galvatron::prelude::*;
use galvatron::sim::{to_chrome_trace, trace_stats};

fn main() {
    let model = GptConfig {
        layers: 48,
        hidden: 1600,
        heads: 25,
        seq: 1024,
        vocab: 50257,
    }
    .build("GPT2-XL");
    let cluster = TestbedPreset::RtxTitan8.topology();

    println!(
        "{}: {:.2}B parameters, {:.0} MB activations/sample",
        model.name,
        model.total_param_count() as f64 / 1e9,
        model.activation_bytes_per_sample() as f64 / 1e6
    );

    // At sequence length 1024 and fp32, GPT2-XL stashes ~18 GB of
    // activations per sample — the planner must explore batches below 8.
    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 64,
        sub_step_batches: true,
        ..OptimizerConfig::default()
    });
    let outcome = optimizer
        .optimize(&model, &cluster, 20 * GIB)
        .expect("topology lookups succeed")
        .expect("GPT2-XL fits 20 GiB on 8 GPUs");
    println!("{}", outcome.plan.summary());

    let sim = Simulator::new(cluster, SimulatorConfig::default().with_budget(20 * GIB));
    let (report, trace) = sim
        .execute_traced(&model, &outcome.plan)
        .expect("plan executes");
    let stats = trace_stats(&trace);
    println!(
        "simulated {:.2} samples/s over {} tasks (compute busy {:.2}s, comm busy {:.2}s)",
        report.throughput, stats.tasks, stats.compute_busy, stats.comm_busy
    );
    if let Some((label, dur)) = &stats.longest {
        println!("longest task: {label} ({:.1} ms)", dur * 1e3);
    }

    let path = std::env::temp_dir().join("gpt_timeline.json");
    std::fs::write(&path, to_chrome_trace(&trace)).expect("write trace");
    println!(
        "timeline written to {} — open in chrome://tracing",
        path.display()
    );
}
