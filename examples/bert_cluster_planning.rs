//! BERT pre-training at cluster scale: how the optimal plan and the gap to
//! fixed-strategy baselines evolve with the per-device memory budget —
//! one row of the paper's Table 1, live.
//!
//! ```sh
//! cargo run --release --example bert_cluster_planning
//! ```

use galvatron::baselines::{BaselinePlanner, BaselineStrategy};
use galvatron::prelude::*;

fn main() {
    let cluster = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();
    let planner = BaselinePlanner::new(
        cluster.clone(),
        OptimizerConfig {
            max_batch: 128,
            ..OptimizerConfig::default()
        },
    );

    println!(
        "{} on {} × {}: throughput by strategy and memory budget (samples/s, simulated)\n",
        model.name,
        cluster.n_devices(),
        cluster.gpu().name
    );
    print!("{:<22}", "strategy");
    let budgets = [8u64, 12, 16, 20];
    for b in budgets {
        print!("{:>10}", format!("{b} GB"));
    }
    println!();

    for strategy in BaselineStrategy::ALL {
        print!("{:<22}", strategy.label());
        for budget_gb in budgets {
            let budget = budget_gb * GIB;
            let cell = match planner.plan(strategy, &model, budget) {
                Ok(Some(outcome)) => {
                    let sim = Simulator::new(
                        cluster.clone(),
                        SimulatorConfig::default().with_budget(budget),
                    );
                    match sim.execute(&model, &outcome.plan) {
                        Ok(report) if !report.oom => format!("{:.2}", report.throughput),
                        _ => "OOM".to_string(),
                    }
                }
                _ => "OOM".to_string(),
            };
            print!("{cell:>10}");
        }
        println!();
    }

    // Show what the automatic plan actually looks like at the tightest and
    // loosest budget.
    for budget_gb in [8u64, 20] {
        if let Ok(Some(outcome)) =
            planner.plan(BaselineStrategy::GalvatronFull, &model, budget_gb * GIB)
        {
            println!("\n--- Galvatron's plan at {budget_gb} GB ---");
            println!("{}", outcome.plan.summary());
        }
    }
}
