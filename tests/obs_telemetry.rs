//! Telemetry acceptance: the obs layer's exporters round-trip, planner
//! metrics agree with the planner's own `SearchStats`, the `--explain`
//! breakdown agrees with a direct estimator recomputation to 1e-9, planner
//! spans and the simulated timeline land in one Chrome-trace file, and two
//! seeded elastic runs export byte-identical deterministic JSON snapshots.

use galvatron::elastic::{ElasticConfig, ElasticRuntime, FaultEvent, FaultKind, FaultSchedule};
use galvatron::obs::{write_spans, NullSink, SampleValue};
use galvatron::prelude::*;
use galvatron_cluster::rtx_titan_node;
use galvatron_model::BertConfig;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The Figure-4 BERT workload (hidden 1280, 20 heads, seq 512).
fn fig4_bert(layers: usize) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build(&format!("BERT-{layers}"))
}

fn quick_planner(max_batch: usize) -> PlannerConfig {
    PlannerConfig {
        optimizer: OptimizerConfig {
            max_batch,
            ..OptimizerConfig::default()
        },
        // Deterministic telemetry: with one worker the prune watermark and
        // cache hit/miss split cannot race.
        jobs: 1,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    }
}

// --- (a) Prometheus text exposition round-trips through a hand parser ----

#[test]
fn prometheus_export_hand_parses_and_round_trips() {
    let registry = MetricsRegistry::new();
    registry.counter("planner_dp_cells_evaluated").inc_by(96);
    registry
        .counter_with("cells_total", &[("model", "bert-8")])
        .inc_by(3);
    registry.gauge("dp_cache_entries").set(17.5);
    let h = registry.histogram("phase_seconds");
    h.observe(0.5e-6);
    h.observe(3e-6);
    h.observe(1e9); // overflow: lands only in +Inf

    let text = registry.snapshot().to_prometheus();

    // Hand-parse: `# TYPE name kind` declarations and `name{labels} value`
    // samples, nothing fancier than the exposition format needs.
    let mut types = BTreeMap::new();
    let mut samples = BTreeMap::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            types.insert(name.to_string(), kind.to_string());
        } else {
            let (key, value) = line.rsplit_once(' ').expect("sample has a value");
            samples.insert(key.to_string(), value.to_string());
        }
    }

    assert_eq!(
        types.get("planner_dp_cells_evaluated").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("dp_cache_entries").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        types.get("phase_seconds").map(String::as_str),
        Some("histogram")
    );

    assert_eq!(
        samples
            .get("planner_dp_cells_evaluated")
            .map(String::as_str),
        Some("96")
    );
    assert_eq!(
        samples
            .get("cells_total{model=\"bert-8\"}")
            .map(String::as_str),
        Some("3")
    );
    assert_eq!(
        samples
            .get("dp_cache_entries")
            .map(|v| v.parse::<f64>().unwrap()),
        Some(17.5)
    );

    // Histogram: cumulative buckets, +Inf equals _count, _sum adds up.
    let buckets: Vec<u64> = samples
        .iter()
        .filter(|(k, _)| k.starts_with("phase_seconds_bucket") && !k.contains("+Inf"))
        .map(|(_, v)| v.parse().unwrap())
        .collect();
    assert!(!buckets.is_empty());
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "buckets cumulative"
    );
    assert_eq!(
        *buckets.last().unwrap(),
        2,
        "overflow excluded from finite buckets"
    );
    assert_eq!(
        samples
            .get("phase_seconds_bucket{le=\"+Inf\"}")
            .map(String::as_str),
        Some("3")
    );
    assert_eq!(
        samples.get("phase_seconds_count").map(String::as_str),
        Some("3")
    );
    let sum: f64 = samples.get("phase_seconds_sum").unwrap().parse().unwrap();
    assert!((sum - (0.5e-6 + 3e-6 + 1e9)).abs() < 1e-3);
}

// --- (b) planner metrics ⇔ SearchStats, explainer ⇔ estimator ------------

#[test]
fn planner_metrics_match_stats_and_explainer_matches_estimator() {
    let topology = rtx_titan_node(8);
    let model = fig4_bert(8);
    let config = quick_planner(16);
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::new(registry.clone(), Arc::new(NullSink));
    let planner = ParallelPlanner::new(config.clone()).with_obs(obs);

    let outcome = planner
        .optimize(&model, &topology, 16 * GIB)
        .expect("search succeeds")
        .expect("Fig. 4 BERT fits 16 GiB on 8 GPUs");
    let stats = &outcome.stats;
    let snap = registry.snapshot();

    // The registry is fed by `SearchStats::record_to`, so every logical
    // counter must agree with the stats snapshot exactly.
    assert!(stats.dp_cells_evaluated > 0, "the DP evaluated cells");
    assert_eq!(
        snap.counter("planner_dp_cells_evaluated"),
        Some(stats.dp_cells_evaluated as u64)
    );
    assert_eq!(snap.counter("dp_cache_hits"), Some(stats.cache_hits as u64));
    assert_eq!(
        snap.counter("dp_cache_misses"),
        Some(stats.cache_misses as u64)
    );
    assert_eq!(
        snap.counter("planner_candidates_pruned"),
        Some(stats.pruned_candidates as u64)
    );
    assert_eq!(
        snap.counter("planner_dp_invocations"),
        Some(stats.dp_invocations as u64)
    );
    let hits = snap.counter("dp_cache_hits").unwrap();
    let misses = snap.counter("dp_cache_misses").unwrap();
    assert!(hits + misses > 0, "the cache was consulted");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        (rate - stats.cache_hit_rate().unwrap()).abs() < 1e-12,
        "exported hit rate consistent with SearchStats"
    );

    // Explain the winning plan and recompute every per-layer total
    // directly with the estimator, the way the DP priced it.
    let estimator = CostEstimator::new(topology, config.optimizer.estimator.clone());
    let ex = explain_plan(&estimator, &model, &outcome.plan, &config.optimizer)
        .expect("explanation succeeds");
    let plan = &outcome.plan;
    let batch = plan.global_batch as u64;
    let m = plan.micro_batches.max(1);
    let micro_u64 = (batch / m as u64).max(1);
    let pp = plan.stages.len();

    let n_layers: usize = ex.stages.iter().map(|s| s.layers.len()).sum();
    assert_eq!(n_layers, model.n_layers());
    for (si, (stage_ex, stage)) in ex.stages.iter().zip(&plan.stages).enumerate() {
        let in_flight = plan.schedule.in_flight(si, pp, m) as u64;
        let act_stash = (micro_u64 * in_flight).min(batch);
        for (layer_ex, strategy) in stage_ex.layers.iter().zip(&stage.layer_strategies) {
            let cost = estimator
                .layer_cost(
                    &model.layers[layer_ex.layer],
                    model.dtype,
                    strategy,
                    micro_u64,
                    stage.device_base,
                )
                .expect("layer cost prices");
            let expected = cost.total_with_micro_batches(estimator.config(), m);
            assert!(
                (layer_ex.total_seconds - expected).abs() <= 1e-9,
                "layer {} explain {} vs estimator {}",
                layer_ex.layer,
                layer_ex.total_seconds,
                expected
            );
            let mem = estimator.layer_memory(
                &model.layers[layer_ex.layer],
                model.dtype,
                strategy,
                act_stash,
            );
            assert_eq!(layer_ex.persistent_bytes, mem.persistent());
        }
    }

    // Headline agrees with the whole-plan estimator.
    let plan_cost = estimator.plan_cost(&model, plan).expect("plan prices");
    assert!((ex.iteration_seconds - plan_cost.iteration_time).abs() <= 1e-9);
    assert!((ex.throughput_samples_per_sec - outcome.throughput_samples_per_sec).abs() <= 1e-9);

    // The rendered table lists every layer.
    let text = ex.render();
    for l in ex.stages.iter().flat_map(|s| &s.layers) {
        assert!(text.contains(&l.strategy), "table lists {}", l.strategy);
    }
}

// --- (c) one Perfetto file: planner spans + simulated timeline -----------

#[test]
fn combined_trace_holds_planner_spans_and_sim_timeline() {
    let topology = rtx_titan_node(8);
    let model = fig4_bert(4);
    let registry = Arc::new(MetricsRegistry::new());
    let span_sink = Arc::new(ChromeSpanSink::new());
    let obs = Obs::new(registry, span_sink.clone());
    let planner = ParallelPlanner::new(quick_planner(16)).with_obs(obs.clone());

    let outcome = planner
        .optimize(&model, &topology, 16 * GIB)
        .expect("search succeeds")
        .expect("feasible");
    let sim =
        Simulator::new(topology, SimulatorConfig::default().with_budget(16 * GIB)).with_obs(obs);
    let (_, trace) = sim
        .execute_traced(&model, &outcome.plan)
        .expect("traced execution succeeds");

    // The same assembly `galvatron-plan --trace` performs: pid 0 is the
    // simulated iteration, pid 1 the planner's search spans.
    let mut writer = ChromeTraceWriter::new();
    galvatron::sim::write_trace_metadata(&mut writer, &trace, 0, "simulated iteration");
    galvatron::sim::write_trace_events(&mut writer, &trace, 0);
    writer.process_name(1, "planner search");
    write_spans(&mut writer, 1, 0, &span_sink.records());
    let json = writer.finish();

    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace is valid JSON");
    let events = parsed.as_array().expect("trace event array");
    let sim_events = events
        .iter()
        .filter(|e| e["ph"] == "X" && e["pid"] == 0)
        .count();
    let span_events: Vec<&serde_json::Value> = events
        .iter()
        .filter(|e| e["ph"] == "X" && e["pid"] == 1)
        .collect();
    assert!(sim_events > 0, "simulated tasks present");
    assert!(
        span_events.iter().any(|e| e["name"] == "dp_search"),
        "planner dp_search span present"
    );
    assert!(
        span_events
            .iter()
            .any(|e| e["name"] == "evaluate_candidates"),
        "sweep phase span present"
    );
    assert!(
        events.iter().any(|e| e["ph"] == "M" && e["pid"] == 1),
        "planner process is named"
    );
}

// --- (d) seeded elastic runs export byte-identical snapshots -------------

#[test]
fn seeded_elastic_runs_export_byte_identical_deterministic_json() {
    let topology = rtx_titan_node(8);
    let model = fig4_bert(8);
    let faults = FaultSchedule::new(vec![
        FaultEvent {
            step: 20,
            kind: FaultKind::DeviceLoss { device: 6 },
        },
        FaultEvent {
            step: 20,
            kind: FaultKind::DeviceLoss { device: 7 },
        },
    ]);
    let run = || {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = Obs::new(registry.clone(), Arc::new(NullSink));
        let config = ElasticConfig {
            total_steps: 40,
            planner: quick_planner(16),
            ..ElasticConfig::new(16 * GIB)
        };
        let runtime = ElasticRuntime::new(config).with_obs(obs);
        runtime
            .run(&model, &topology, &faults)
            .expect("run succeeds");
        registry.snapshot()
    };

    let first = run();
    let second = run();
    assert_eq!(first.counter("elastic_replans_total"), Some(1));
    let migrated = first
        .counter("migration_bytes_modeled")
        .expect("migration bytes recorded");
    assert!(migrated > 0, "shrinking moves state");
    assert!(first.counter("elastic_steps_total").unwrap() > 0);

    // The deterministic view (volatile wall-clock latencies dropped) must
    // export byte-identically across the two runs; the outage/detect
    // histograms live in *simulated* time, so they survive the filter and
    // still match.
    let a = first.deterministic().to_json();
    let b = second.deterministic().to_json();
    assert_eq!(a, b, "seeded elastic runs must export identical snapshots");
    assert!(
        first.deterministic().metrics.iter().any(|m| {
            m.name == "elastic_outage_seconds"
                && matches!(&m.value, SampleValue::Histogram(h) if h.count > 0)
        }),
        "simulated-time histograms are deterministic and retained"
    );
}
