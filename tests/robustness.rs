//! Property-based robustness: arbitrary *valid* plans must always execute —
//! no deadlocks, no negative memory accounting, throughput always positive,
//! estimator always finite.

use galvatron::prelude::*;
use galvatron::strategy::PipelineSchedule;
use galvatron_core::PipelinePartitioner;
use galvatron_strategy::{DecisionTreeBuilder, IntraStageStrategy, StagePlan};
use proptest::prelude::*;

/// Generate a structurally valid plan for `model` on 8 devices.
fn arb_plan(
    n_layers: usize,
) -> impl Strategy<Value = (usize, usize, usize, PipelineSchedule, u64)> {
    // (pp_index, batch_exp, micro_exp, schedule, strategy_seed)
    (
        0usize..4, // pp degree = 2^idx ∈ {1,2,4,8}
        0usize..5, // batch = 8 << exp
        0usize..4, // micro divisor = 1 << exp
        prop_oneof![
            Just(PipelineSchedule::GPipe),
            Just(PipelineSchedule::OneFOneB)
        ],
        any::<u64>(),
    )
        .prop_filter("pipeline fits the layer count", move |(pp_idx, ..)| {
            (1usize << pp_idx) <= n_layers
        })
}

fn build_plan(
    model: &galvatron::model::ModelSpec,
    pp_idx: usize,
    batch_exp: usize,
    micro_exp: usize,
    schedule: PipelineSchedule,
    seed: u64,
) -> ParallelPlan {
    let pp = 1usize << pp_idx;
    let group = 8 / pp;
    let batch = 8usize << batch_exp;
    let set = DecisionTreeBuilder::new(group).strategies();
    let bounds = PipelinePartitioner::ByLayerCount.partition(model, pp);

    // Deterministic pseudo-random strategy choice per layer, constrained to
    // data degrees dividing the micro-batch.
    let micro_batches = (1usize << micro_exp).min(batch);
    let micro = batch / micro_batches;
    let feasible: Vec<&IntraStageStrategy> = set
        .iter()
        .filter(|s| micro.is_multiple_of(s.data_degree()))
        .collect();
    assert!(!feasible.is_empty());

    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let stages: Vec<StagePlan> = bounds
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| StagePlan {
            layer_start: a,
            layer_end: b,
            device_base: i * group,
            device_count: group,
            layer_strategies: (a..b)
                .map(|_| feasible[next() % feasible.len()].clone())
                .collect(),
            layer_recompute: Vec::new(),
        })
        .collect();
    ParallelPlan {
        origin: "fuzz".into(),
        global_batch: batch,
        micro_batches,
        schedule,
        stages,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn random_plans_simulate_and_estimate(
        (pp_idx, batch_exp, micro_exp, schedule, seed) in arb_plan(10)
    ) {
        // A small BERT so each case is fast.
        let model = galvatron::model::BertConfig {
            layers: 8,
            hidden: 1280,
            heads: 20,
            seq: 512,
            vocab: 30522,
        }
        .build("fuzz-bert");
        let topo = TestbedPreset::RtxTitan8.topology();
        let plan = build_plan(&model, pp_idx, batch_exp, micro_exp, schedule, seed);
        plan.validate(model.n_layers(), 8).unwrap();

        let est = CostEstimator::with_defaults(topo.clone())
            .plan_cost(&model, &plan)
            .unwrap();
        prop_assert!(est.iteration_time.is_finite() && est.iteration_time > 0.0);
        prop_assert!(est.peak_memory() > 0);

        let sim = Simulator::new(topo, SimulatorConfig::default());
        let report = sim.execute(&model, &plan).unwrap();
        prop_assert!(report.iteration_time.is_finite() && report.iteration_time > 0.0);
        prop_assert!(report.throughput > 0.0);
        prop_assert!(report.peak_memory() > 0);
        // Busy time never exceeds the makespan.
        for busy in report.busy_compute.iter().chain(&report.busy_comm) {
            prop_assert!(*busy <= report.iteration_time + 1e-9);
        }
        // The estimate tracks the simulation within a broad sanity band.
        let ratio = est.iteration_time / report.iteration_time;
        prop_assert!((0.4..=2.5).contains(&ratio), "est/sim ratio {ratio}");
    }

    #[test]
    fn random_plans_respect_memory_monotonicity(
        (pp_idx, batch_exp, _micro, schedule, seed) in arb_plan(10)
    ) {
        let model = galvatron::model::BertConfig {
            layers: 8,
            hidden: 1280,
            heads: 20,
            seq: 512,
            vocab: 30522,
        }
        .build("fuzz-bert");
        let topo = TestbedPreset::RtxTitan8.topology();
        let small = build_plan(&model, pp_idx, batch_exp, 0, schedule, seed);
        let mut large = small.clone();
        large.global_batch *= 2;
        let est = CostEstimator::with_defaults(topo);
        let a = est.plan_cost(&model, &small).unwrap();
        let b = est.plan_cost(&model, &large).unwrap();
        prop_assert!(b.peak_memory() >= a.peak_memory());
        prop_assert!(b.iteration_time >= a.iteration_time);
    }
}
