//! The paper's quantitative claims, verified as integration tests.

use galvatron::baselines::{BaselinePlanner, BaselineStrategy};
use galvatron::prelude::*;
use galvatron::strategy::tree::total_candidates_across_pp;
use galvatron_cluster::collectives::{all_gather, all_reduce, reduce_scatter};

#[test]
fn figure2_search_space_counts() {
    // §3.2: 8-GPU decision trees yield 34 hybrid candidates across all PP
    // degrees, pruned to 22 by Takeaway #3.
    assert_eq!(total_candidates_across_pp(8, false), 34);
    assert_eq!(total_candidates_across_pp(8, true), 22);
}

#[test]
fn takeaway3_sdp_communication_arithmetic() {
    // §3.2's pruning argument: "integrating DP and SDP will lead to two
    // rounds of communication including 2(N1−1)/N1 for N1-way DP and
    // 3(N2−1)/N2 for N2-way SDP. Given N1×N2 = N, ... the minimum value of
    // its cost is still larger than that of pure SDP" — both rounds priced
    // at full model volume, as the paper does. (With the DP round priced at
    // the 1/N2 shard instead, the mixture can win on pure bandwidth, but it
    // pays twice the latency rounds and strictly more memory — the paper
    // prunes it regardless, and so do we.)
    let link = Link::of_class(LinkClass::Pcie3);
    let v = 512 * MIB;
    for n in [4usize, 8, 16, 32] {
        let pure_sdp = 2.0 * all_gather(n, v, link).bandwidth_time()
            + reduce_scatter(n, v, link).bandwidth_time();
        let mut n1 = 2;
        while n1 < n {
            let n2 = n / n1;
            let dp_part = all_reduce(n1, v, link).bandwidth_time();
            let sdp_part = 2.0 * all_gather(n2, v, link).bandwidth_time()
                + reduce_scatter(n2, v, link).bandwidth_time();
            assert!(
                dp_part + sdp_part > pure_sdp,
                "n={n} n1={n1}: mixture {} <= pure {}",
                dp_part + sdp_part,
                pure_sdp
            );
            n1 *= 2;
        }
    }
}

#[test]
fn table2_statistics_reproduce() {
    for m in PaperModel::ALL {
        let spec = m.spec();
        let params_err =
            (spec.total_param_count() as f64 / m.paper_param_count() as f64 - 1.0).abs();
        assert!(
            params_err < 0.02,
            "{} params off by {params_err:.3}",
            m.name()
        );
    }
}

#[test]
fn figure3_overlap_modeling_improves_estimates() {
    // The estimator with the §3.4 slowdown must beat the naive
    // max(compute, comm) estimator on communication-heavy plans, and the
    // naive one must under-predict.
    let cluster = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();
    let planner = BaselinePlanner::new(
        cluster.clone(),
        OptimizerConfig {
            max_batch: 32,
            ..OptimizerConfig::default()
        },
    );
    let outcome = planner
        .plan(BaselineStrategy::PyTorchDdp, &model, 16 * GIB)
        .unwrap()
        .expect("DDP fits 16 GiB");

    let sim = Simulator::new(cluster.clone(), SimulatorConfig::default());
    let measured = sim.execute(&model, &outcome.plan).unwrap().iteration_time;

    let with_cfg = EstimatorConfig {
        include_boundary_comm: true,
        ..EstimatorConfig::default()
    };
    let without_cfg = EstimatorConfig {
        include_boundary_comm: true,
        ..EstimatorConfig::without_overlap_modeling()
    };
    let with = CostEstimator::new(cluster.clone(), with_cfg)
        .plan_cost(&model, &outcome.plan)
        .unwrap()
        .iteration_time;
    let without = CostEstimator::new(cluster, without_cfg)
        .plan_cost(&model, &outcome.plan)
        .unwrap()
        .iteration_time;

    let err_with = ((with - measured) / measured).abs();
    let err_without = ((without - measured) / measured).abs();
    assert!(err_with < 0.10, "with-overlap error {err_with:.3}");
    assert!(err_with < err_without, "{err_with:.3} !< {err_without:.3}");
    assert!(without < measured, "naive estimator must under-predict");
}

#[test]
fn restricted_searches_never_beat_the_full_search_in_estimate() {
    // §5.2's comparison baselines: DP+TP and DP+PP explore subsets of the
    // full space, so the full search's estimated throughput dominates.
    let cluster = TestbedPreset::RtxTitan8.topology();
    let planner = BaselinePlanner::new(
        cluster,
        OptimizerConfig {
            max_batch: 64,
            ..OptimizerConfig::default()
        },
    );
    for m in [PaperModel::BertHuge32, PaperModel::VitHuge32] {
        let model = m.spec();
        let full = planner
            .plan(BaselineStrategy::GalvatronFull, &model, 12 * GIB)
            .unwrap()
            .expect("feasible");
        for restricted in [
            BaselineStrategy::GalvatronDpTp,
            BaselineStrategy::GalvatronDpPp,
        ] {
            if let Some(out) = planner.plan(restricted, &model, 12 * GIB).unwrap() {
                assert!(
                    full.throughput_samples_per_sec >= out.throughput_samples_per_sec - 1e-9,
                    "{} beat full search on {}",
                    restricted.label(),
                    m.name()
                );
            }
        }
    }
}

#[test]
fn figure5_swin_depth_gradient() {
    // §5.5: "shallower layers prefer data parallel ... deeper layers prefer
    // tensor parallel".
    let cluster = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::SwinHuge32.spec();
    let outcome = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 128,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &cluster, 12 * GIB)
    .unwrap()
    .expect("feasible");

    let first_enc = model
        .layers
        .iter()
        .position(|l| l.is_transformer_layer())
        .unwrap();
    let last_enc = model.n_layers()
        - 1
        - model
            .layers
            .iter()
            .rev()
            .position(|l| l.is_transformer_layer())
            .unwrap();
    let shallow = outcome.plan.strategy_of(first_enc).unwrap();
    let deep = outcome.plan.strategy_of(last_enc).unwrap();
    assert!(
        shallow.data_degree() >= deep.data_degree(),
        "shallow {shallow} deep {deep}"
    );
    assert!(deep.tp() >= shallow.tp(), "shallow {shallow} deep {deep}");
}

#[test]
fn search_time_grows_mildly_with_cluster_size() {
    // §5.6: search cost grows ~2.2× from 8 to 16 GPUs — sub-exponential.
    let model = PaperModel::BertHuge32.spec();
    let cfg = OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    };
    let t8 = {
        let out = GalvatronOptimizer::new(cfg.clone())
            .optimize(&model, &TestbedPreset::RtxTitan8.topology(), 16 * GIB)
            .unwrap()
            .expect("feasible");
        out.stats.search_seconds
    };
    let t16 = {
        let out = GalvatronOptimizer::new(cfg)
            .optimize(&model, &TestbedPreset::RtxTitan16.topology(), 16 * GIB)
            .unwrap()
            .expect("feasible");
        out.stats.search_seconds
    };
    // Strategy space grows 22 → 46ish; time should grow far slower than the
    // naive |S|² × configurations blow-up. Generous bound to stay robust on
    // loaded CI machines.
    assert!(
        t16 < t8 * 40.0,
        "search time exploded: {t8:.3}s → {t16:.3}s"
    );
}
