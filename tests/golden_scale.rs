//! Golden snapshot for the 64-GPU/100-layer cold scaling point, plus the
//! best-first visit-order pin.
//!
//! The arena-DP rebuild added a cold scaling point (the `scale_point_model`
//! BERT variant on the 64-GPU A100 testbed) to the planner sweep bench.
//! This test pins its plan the same way `golden_plans` pins the Table-1
//! zoo: field-for-field against a checked-in snapshot with throughput and
//! iteration time compared as exact `f64` bit patterns.
//!
//! It also pins the best-first candidate ordering. The sweep dispatches
//! candidates in descending throughput-upper-bound order and folds the
//! dispatched slot ordinals into an FNV-1a digest
//! (`SearchStats::visit_order_digest`); the snapshot freezes that digest,
//! so any change to the ordering heuristic — intended or not — shows up as
//! a failing diff rather than a silent search-order drift.
//!
//! To regenerate after an *intentional* cost-model or ordering change:
//!
//! ```text
//! GALVATRON_BLESS=1 cargo test --test golden_scale
//! ```
//!
//! then review the diff like any other code change.

use galvatron::prelude::*;
use galvatron_bench::paper::{scale_point_model, SCALE_POINT_LAYERS};
use galvatron_core::{IncrementalEngine, OptimizerConfig};
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use galvatron_strategy::ParallelPlan;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

const BUDGET_GIB: u64 = 16;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenScale {
    model: String,
    testbed: String,
    budget_gib: u64,
    layers: usize,
    max_batch: usize,
    throughput_samples_per_sec: f64,
    iteration_time: f64,
    throughput_bits: u64,
    iteration_time_bits: u64,
    /// FNV-1a digest of the best-first dispatch order (slot ordinals).
    visit_order_digest: u64,
    plan: Option<ParallelPlan>,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("scale-a100-64-100l.json")
}

fn config() -> OptimizerConfig {
    // Mirrors the planner_sweep bench's scale point: max_batch 32 keeps the
    // run quick, the reuse structure is identical at larger caps.
    OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    }
}

fn planner(jobs: usize) -> ParallelPlanner {
    ParallelPlanner::new(PlannerConfig {
        optimizer: config(),
        jobs,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    })
}

/// One cold plan of the scale point (fresh cache + engine, like the bench's
/// cold pass). Returns the snapshot and the raw outcome for extra checks.
fn snapshot(jobs: usize) -> GoldenScale {
    let spec = scale_point_model();
    let topology = TestbedPreset::A100x64.topology();
    let cache = DpCache::new();
    let engine = IncrementalEngine::new();
    let outcome = planner(jobs)
        .optimize_with_reuse(
            &spec,
            &topology,
            BUDGET_GIB * GIB,
            Some(&cache),
            Some(&engine),
        )
        .expect("64-GPU testbed is well formed");
    let outcome = outcome.expect("scale point is feasible at 16 GiB");
    GoldenScale {
        model: spec.name.clone(),
        testbed: "a100-64".to_string(),
        budget_gib: BUDGET_GIB,
        layers: spec.n_layers(),
        max_batch: config().max_batch,
        throughput_samples_per_sec: outcome.throughput_samples_per_sec,
        iteration_time: outcome.iteration_time,
        throughput_bits: outcome.throughput_samples_per_sec.to_bits(),
        iteration_time_bits: outcome.iteration_time.to_bits(),
        visit_order_digest: outcome.stats.visit_order_digest,
        plan: Some(outcome.plan),
    }
}

#[test]
fn scale_point_plan_and_visit_order_match_the_golden_snapshot() {
    let bless = std::env::var_os("GALVATRON_BLESS").is_some_and(|v| v == "1");
    let current = snapshot(2);
    assert_eq!(current.layers, SCALE_POINT_LAYERS);
    let path = golden_path();
    if bless {
        let json = serde_json::to_string_pretty(&current).expect("snapshot serializes");
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, json + "\n").expect("write snapshot");
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); \
             run `GALVATRON_BLESS=1 cargo test --test golden_scale` to create it"
        )
    });
    let golden: GoldenScale = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("corrupt golden snapshot {path:?}: {e:?}"));
    // Readable floats must agree with their own bit patterns, or the
    // snapshot was hand-edited inconsistently.
    assert_eq!(
        golden.throughput_samples_per_sec.to_bits(),
        golden.throughput_bits,
        "snapshot throughput and bits disagree — regenerate, don't hand-edit"
    );
    assert_eq!(
        golden.iteration_time.to_bits(),
        golden.iteration_time_bits,
        "snapshot iteration time and bits disagree — regenerate, don't hand-edit"
    );
    assert_eq!(
        golden, current,
        "scale point diverged from the golden snapshot. If the change is \
         intentional, re-bless with `GALVATRON_BLESS=1 cargo test --test \
         golden_scale` and review the diff."
    );
}

/// The best-first dispatch order is a pure function of the search inputs:
/// fresh reuse structures and a different worker count must reproduce the
/// digest bit-for-bit (ordering is decided before dispatch, so parallelism
/// cannot perturb it).
#[test]
fn visit_order_digest_is_deterministic_across_runs_and_worker_counts() {
    let two_workers = snapshot(2);
    let again = snapshot(2);
    let serial = snapshot(1);
    assert_ne!(two_workers.visit_order_digest, 0, "digest never recorded");
    assert_eq!(
        two_workers.visit_order_digest, again.visit_order_digest,
        "visit order drifted between identical runs"
    );
    assert_eq!(
        two_workers.visit_order_digest, serial.visit_order_digest,
        "visit order depends on worker count"
    );
    assert_eq!(
        two_workers.plan, serial.plan,
        "plan depends on worker count"
    );
}
