//! Golden-plan snapshot tests.
//!
//! Every Table-1 zoo model is planned on the 8-GPU PCIe testbed through the
//! full production stack (parallel planner + memoization cache + incremental
//! engine) and compared field-for-field against a checked-in snapshot in
//! `tests/golden/`. Throughput and iteration time are compared as exact
//! `f64` bit patterns, so any drift in the cost model, the DP tie-breaking
//! or the incremental reuse layers shows up as a failing diff — not as a
//! silently shifted plan.
//!
//! To regenerate after an *intentional* cost-model change:
//!
//! ```text
//! GALVATRON_BLESS=1 cargo test --test golden_plans
//! ```
//!
//! then review the diff like any other code change.

use galvatron::prelude::*;
use galvatron_core::{IncrementalEngine, OptimizerConfig};
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use galvatron_strategy::ParallelPlan;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

const BUDGET_GIB: u64 = 16;

/// One checked-in snapshot. The `*_bits` fields are the authoritative
/// comparison (bit-exact `f64`); the plain floats ride along so humans can
/// read the file. An infeasible model is pinned too (`plan: None`) — a
/// cost-model change that suddenly makes it fit is just as much a
/// divergence as a shifted plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenPlan {
    model: String,
    testbed: String,
    budget_gib: u64,
    max_batch: usize,
    throughput_samples_per_sec: f64,
    iteration_time: f64,
    throughput_bits: u64,
    iteration_time_bits: u64,
    plan: Option<ParallelPlan>,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn config() -> OptimizerConfig {
    OptimizerConfig {
        max_batch: 64,
        ..OptimizerConfig::default()
    }
}

fn snapshot(
    planner: &ParallelPlanner,
    cache: &DpCache,
    engine: &IncrementalEngine,
    model: PaperModel,
) -> GoldenPlan {
    let spec = model.spec();
    let topology = TestbedPreset::RtxTitan8.topology();
    let outcome = planner
        .optimize_with_reuse(
            &spec,
            &topology,
            BUDGET_GIB * GIB,
            Some(cache),
            Some(engine),
        )
        .expect("8-GPU testbed is well formed");
    let (throughput, iteration_time, plan) = match outcome {
        Some(o) => (o.throughput_samples_per_sec, o.iteration_time, Some(o.plan)),
        None => (0.0, 0.0, None),
    };
    GoldenPlan {
        model: model.name().to_string(),
        testbed: "rtx-titan-8".to_string(),
        budget_gib: BUDGET_GIB,
        max_batch: config().max_batch,
        throughput_samples_per_sec: throughput,
        iteration_time,
        throughput_bits: throughput.to_bits(),
        iteration_time_bits: iteration_time.to_bits(),
        plan,
    }
}

#[test]
fn zoo_plans_match_the_golden_snapshots() {
    let bless = std::env::var_os("GALVATRON_BLESS").is_some_and(|v| v == "1");
    let planner = ParallelPlanner::new(PlannerConfig {
        optimizer: config(),
        jobs: 2,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    });
    // One warm cache and engine across the whole zoo, exactly like a plan
    // service — so the snapshots also pin that cross-model reuse does not
    // leak between contexts.
    let cache = DpCache::new();
    let engine = IncrementalEngine::new();
    let dir = golden_dir();
    let mut diverged = Vec::new();

    for model in PaperModel::ALL {
        let current = snapshot(&planner, &cache, &engine, model);
        let path = dir.join(format!("{}.json", model.name()));
        if bless {
            let json = serde_json::to_string_pretty(&current).expect("snapshot serializes");
            std::fs::create_dir_all(&dir).expect("create tests/golden");
            std::fs::write(&path, json + "\n").expect("write snapshot");
            continue;
        }
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {path:?} ({e}); \
                 run `GALVATRON_BLESS=1 cargo test --test golden_plans` to create it"
            )
        });
        let golden: GoldenPlan = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("corrupt golden snapshot {path:?}: {e:?}"));
        // Bit patterns are authoritative: a plan that matches structurally
        // but differs in modeled time is still a divergence.
        if golden.plan != current.plan
            || golden.throughput_bits != current.throughput_bits
            || golden.iteration_time_bits != current.iteration_time_bits
        {
            diverged.push(format!(
                "{}: golden throughput {} (bits {:#018x}), current {} (bits {:#018x})",
                model.name(),
                golden.throughput_samples_per_sec,
                golden.throughput_bits,
                current.throughput_samples_per_sec,
                current.throughput_bits,
            ));
        }
        // The readable floats must agree with their own bit patterns, or
        // the snapshot was hand-edited inconsistently.
        assert_eq!(
            golden.throughput_samples_per_sec.to_bits(),
            golden.throughput_bits,
            "{}: snapshot throughput and bits disagree — regenerate, don't hand-edit",
            model.name()
        );
        assert_eq!(
            golden.iteration_time.to_bits(),
            golden.iteration_time_bits,
            "{}: snapshot iteration time and bits disagree — regenerate, don't hand-edit",
            model.name()
        );
    }

    assert!(
        diverged.is_empty(),
        "plans diverged from the golden snapshots:\n  {}\n\
         If the change is intentional, re-bless with \
         `GALVATRON_BLESS=1 cargo test --test golden_plans` and review the diff.",
        diverged.join("\n  ")
    );
}
