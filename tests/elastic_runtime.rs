//! End-to-end elastic runtime: fault injection → detection → re-plan →
//! migration → recovery, on the paper's 8-GPU testbed.
//!
//! The headline scenario mirrors the acceptance demo: the Figure-4 BERT
//! workload trains on 8 RTX TITANs, two devices die mid-run, and the
//! runtime must detect the loss, re-plan on the 6 survivors with a plan
//! bit-identical to planning from scratch on that degraded topology, and
//! recover its goodput.

use galvatron::elastic::{ElasticConfig, ElasticRuntime, FaultEvent, FaultKind, FaultSchedule};
use galvatron::prelude::*;
use galvatron_cluster::rtx_titan_node;
use galvatron_model::BertConfig;
use proptest::prelude::*;

/// The Figure-4 BERT workload (hidden 1280, 20 heads, seq 512).
fn fig4_bert(layers: usize) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 1280,
        heads: 20,
        seq: 512,
        vocab: 30522,
    }
    .build(&format!("BERT-{layers}"))
}

fn quick_planner(max_batch: usize) -> PlannerConfig {
    PlannerConfig {
        optimizer: OptimizerConfig {
            max_batch,
            ..OptimizerConfig::default()
        },
        jobs: 2,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    }
}

fn demo_config(max_batch: usize, total_steps: usize) -> ElasticConfig {
    ElasticConfig {
        total_steps,
        planner: quick_planner(max_batch),
        ..ElasticConfig::new(16 * GIB)
    }
}

#[test]
fn killing_two_devices_recovers_on_the_six_survivors() {
    let topology = rtx_titan_node(8);
    let model = fig4_bert(8);
    let faults = FaultSchedule::new(vec![
        FaultEvent {
            step: 20,
            kind: FaultKind::DeviceLoss { device: 6 },
        },
        FaultEvent {
            step: 20,
            kind: FaultKind::DeviceLoss { device: 7 },
        },
    ]);
    let config = demo_config(16, 40);
    let runtime = ElasticRuntime::new(config.clone());
    let outcome = runtime
        .run(&model, &topology, &faults)
        .expect("run succeeds");

    // The fault was detected and recovered exactly once.
    assert_eq!(
        outcome.recoveries.len(),
        1,
        "one recovery for one fault burst"
    );
    let recovery = &outcome.recoveries[0];
    assert!(recovery.trigger.contains("loss(6)"));
    assert!(recovery.trigger.contains("loss(7)"));
    assert_eq!(recovery.injected_step, 20);
    let expected_detect = config.detector.time_to_detect_loss();
    assert!(
        (recovery.time_to_detect - expected_detect).abs() < 1e-9,
        "loss detection takes miss_threshold × heartbeat_interval"
    );
    assert!(recovery.time_to_migrate > 0.0, "shrinking moves state");
    assert!(recovery.steps_lost > 0);

    // The run finished on exactly the 6 survivors.
    assert_eq!(outcome.final_plan.devices, 6);
    assert_eq!(outcome.final_device_map, vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(outcome.failed_devices, vec![6, 7]);
    assert_eq!(outcome.recovered_failures, vec![6, 7]);
    assert_eq!(outcome.total_steps, 40);
    outcome
        .final_plan
        .plan
        .validate(model.n_layers(), 6)
        .expect("recovered plan is valid");
    assert!(!outcome.final_plan.oom);
    assert!(outcome.final_plan.peak_memory <= config.budget_bytes);

    // Bit-identical to planning from scratch on the degraded topology.
    let scratch = PlanService::new(quick_planner(16))
        .submit(&PlanRequest {
            name: "scratch".into(),
            model: model.clone(),
            topology: outcome.final_topology.clone(),
            budget_bytes: config.budget_bytes,
        })
        .expect("scratch planning succeeds")
        .outcome
        .expect("feasible on 6 survivors");
    assert_eq!(
        outcome.final_plan.plan, scratch.plan,
        "online re-plan must be bit-identical to planning from scratch"
    );

    // Post-recovery goodput within 1% of the from-scratch plan's simulated
    // throughput on the degraded cluster.
    let sim = Simulator::new(
        outcome.final_topology.clone(),
        config.sim.clone().with_budget(config.budget_bytes),
    );
    let scratch_report = sim.execute(&model, &scratch.plan).expect("plan executes");
    let after = outcome.goodput.after.expect("run ends recovered");
    let ratio = after / scratch_report.throughput;
    assert!(
        (ratio - 1.0).abs() < 0.01,
        "post-recovery goodput {after:.2} vs from-scratch {:.2}",
        scratch_report.throughput
    );

    // Goodput phases are ordered sensibly: the fault window hurts.
    let before = outcome.goodput.before.expect("healthy prefix");
    let during = outcome.goodput.during.expect("fault window");
    assert!(during < before, "the outage must cost goodput");
    assert!(outcome.goodput.overall > 0.0);
}

#[test]
fn elastic_timelines_are_deterministic_under_a_fixed_seed() {
    let topology = rtx_titan_node(8);
    let model = fig4_bert(8);
    let faults = FaultSchedule::random(0x9A1A_7201, 24, 8, topology.levels().len(), 3);
    let run = |_: usize| {
        let runtime = ElasticRuntime::new(demo_config(8, 24));
        let mut outcome = runtime
            .run(&model, &topology, &faults)
            .expect("run succeeds");
        // Host planning wall-clock is the one legitimately non-deterministic
        // field; blank it before comparing byte-for-byte.
        for r in &mut outcome.recoveries {
            r.replan_wall_seconds = 0.0;
        }
        serde_json::to_string(&outcome).expect("serializes")
    };
    assert_eq!(
        run(0),
        run(1),
        "identical seed must replay byte-identically"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// For any seeded fault schedule: the re-planned strategy never places
    /// work on a device that failed (and was recovered), and the final
    /// plan fits the surviving memory budget.
    #[test]
    fn replans_avoid_failed_devices_and_fit_memory(seed in 0u64..1000) {
        let topology = rtx_titan_node(8);
        let model = fig4_bert(8);
        let faults = FaultSchedule::random(seed, 16, 8, topology.levels().len(), 2);
        let config = demo_config(8, 16);
        let runtime = ElasticRuntime::new(config.clone());
        let outcome = runtime.run(&model, &topology, &faults).expect("run succeeds");

        for failed in &outcome.recovered_failures {
            prop_assert!(
                !outcome.final_device_map.contains(failed),
                "failed device {failed} still mapped in {:?}",
                outcome.final_device_map
            );
        }
        prop_assert!(!outcome.final_plan.oom);
        prop_assert!(outcome.final_plan.peak_memory <= config.budget_bytes);
        outcome
            .final_plan
            .plan
            .validate(model.n_layers(), outcome.final_device_map.len())
            .expect("final plan valid on the survivors");
        for recovery in &outcome.recoveries {
            prop_assert!(recovery.survivors >= 2);
            prop_assert!(recovery.outage_seconds >= recovery.time_to_detect);
        }
    }
}
