//! Property tests for the estimator invariants the incremental engine's
//! warm-starts rely on.
//!
//! The monotone-memory ledger prunes a stage query at activation stash `b'`
//! whenever a smaller stash `b ≤ b'` was already infeasible. That is only
//! sound if modeled memory is monotone in the batch (the paper's
//! Algorithm 1 lines 14–18 lean on the same fact to stop the sweep), and
//! only complete if `dp_feasible` — the O(L·S) screen the parallel planner
//! and the ledger both use — answers exactly `dp_search(..).is_some()`.
//! This suite pins both, plus the layer-count monotonicity that makes
//! stage-prefix costs well behaved.

use galvatron_cluster::{rtx_titan_node, GIB, MIB};
use galvatron_core::{dp_feasible, dp_search_with_micro_batches};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_strategy::DecisionTreeBuilder;
use proptest::prelude::*;

fn estimator() -> CostEstimator {
    CostEstimator::new(rtx_titan_node(8), EstimatorConfig::default())
}

fn model(layers: usize) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 1024,
        heads: 16,
        seq: 256,
        vocab: 30522,
    }
    .build("invariants")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// Modeled per-layer memory (persistent and peak) never decreases in
    /// the batch size, for every layer kind and every strategy.
    #[test]
    fn layer_memory_is_monotone_in_batch(
        layers in 1usize..=3,
        batch_exp in 0u32..=5,
    ) {
        let est = estimator();
        let spec = model(layers);
        let set = DecisionTreeBuilder::new(8).strategies();
        let b1 = 1u64 << batch_exp;
        let b2 = b1 * 2;
        for layer in &spec.layers {
            for s in set.iter() {
                let small = est.layer_memory(layer, spec.dtype, s, b1);
                let large = est.layer_memory(layer, spec.dtype, s, b2);
                prop_assert!(
                    small.persistent() <= large.persistent(),
                    "{s}: persistent {} @ {b1} > {} @ {b2}",
                    small.persistent(),
                    large.persistent()
                );
                prop_assert!(
                    small.peak() <= large.peak(),
                    "{s}: peak {} @ {b1} > {} @ {b2}",
                    small.peak(),
                    large.peak()
                );
            }
        }
    }

    /// Modeled per-layer time never decreases in the micro-batch size.
    #[test]
    fn layer_cost_is_monotone_in_batch(
        layers in 1usize..=3,
        batch_exp in 0u32..=5,
    ) {
        let est = estimator();
        let spec = model(layers);
        let set = DecisionTreeBuilder::new(8).strategies();
        let b1 = 1u64 << batch_exp;
        let b2 = b1 * 2;
        for layer in &spec.layers {
            for s in set.iter() {
                let small = est.layer_cost(layer, spec.dtype, s, b1, 0).unwrap();
                let large = est.layer_cost(layer, spec.dtype, s, b2, 0).unwrap();
                prop_assert!(
                    small.total(est.config()) <= large.total(est.config()) + 1e-12,
                    "{s}: cost {} @ {b1} > {} @ {b2}",
                    small.total(est.config()),
                    large.total(est.config())
                );
            }
        }
    }

    /// Stage-prefix monotonicity in the layer count: a feasible stage stays
    /// feasible when layers are removed from its end, and its optimum never
    /// gets more expensive.
    #[test]
    fn dp_is_monotone_in_layer_count(
        layers in 2usize..=4,
        batch_exp in 3u32..=5,
        budget_gib in 4u64..=16,
    ) {
        let est = estimator();
        let spec = model(layers);
        let set = DecisionTreeBuilder::new(8).strategies();
        let batch = 1u64 << batch_exp;
        let budget = budget_gib * GIB;
        let n = spec.n_layers();
        let mut prev_cost: Option<f64> = None;
        // Walk prefixes longest-first: feasibility may only *appear* and the
        // optimum may only shrink as layers are dropped.
        for end in (1..=n).rev() {
            let out = dp_search_with_micro_batches(
                &est, &spec, 0..end, 0, &set, batch, budget, 32 * MIB, 1, batch,
            )
            .unwrap();
            if let Some(prev) = prev_cost {
                let out = out.as_ref().expect("shorter prefix lost feasibility");
                prop_assert!(
                    out.cost <= prev + 1e-12,
                    "prefix 0..{end}: {} > {prev}",
                    out.cost
                );
            }
            prev_cost = out.map(|o| o.cost).or(prev_cost);
        }
    }

    /// The warm-start soundness property itself: once a query is
    /// memory-infeasible at stash `b`, it stays infeasible at every larger
    /// stash — for both `dp_feasible` and the full solve.
    #[test]
    fn infeasibility_is_monotone_in_batch(
        layers in 1usize..=3,
        budget_mib in 64u64..=4096,
        gran_exp in 4u32..=6,
    ) {
        let est = estimator();
        let spec = model(layers);
        let set = DecisionTreeBuilder::new(8).strategies();
        let budget = budget_mib * MIB;
        let granularity = (1u64 << gran_exp) * MIB;
        let mut seen_infeasible = false;
        for batch in [1u64, 2, 4, 8, 16, 32, 64] {
            let quick = dp_feasible(&est, &spec, 0..spec.n_layers(), &set, budget, granularity, batch);
            let full = dp_search_with_micro_batches(
                &est, &spec, 0..spec.n_layers(), 0, &set, batch, budget, granularity, 1, batch,
            )
            .unwrap()
            .is_some();
            prop_assert_eq!(quick, full, "screen vs solve at batch {}", batch);
            if seen_infeasible {
                prop_assert!(!full, "batch {} feasible after a smaller batch was not", batch);
            }
            seen_infeasible |= !full;
        }
    }

    /// `dp_feasible` answers exactly `dp_search(..).is_some()` across the
    /// (budget × batch × micro-batch) grid, including the quantization
    /// boundary region.
    #[test]
    fn feasibility_screen_agrees_with_the_solver(
        layers in 1usize..=3,
        budget_mib in 128u64..=8192,
        batch_exp in 0u32..=5,
        micro_batches in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let est = estimator();
        let spec = model(layers);
        let set = DecisionTreeBuilder::new(8).strategies();
        let budget = budget_mib * MIB;
        let batch = 8u64 << batch_exp;
        let quick = dp_feasible(&est, &spec, 0..spec.n_layers(), &set, budget, 32 * MIB, batch);
        let full = dp_search_with_micro_batches(
            &est, &spec, 0..spec.n_layers(), 0, &set, batch, budget, 32 * MIB, micro_batches, batch,
        )
        .unwrap()
        .is_some();
        prop_assert_eq!(quick, full);
    }
}
