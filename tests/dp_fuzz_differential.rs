//! Differential fuzzing of the arena DP against the reference solver.
//!
//! Property-based companion to the seeded `dp_oracle` wall: arbitrary
//! `(model, topology, budget)` instances are drawn from generators spanning
//! flat, non-power-of-two island, and priced mixed clusters, and every case
//! asserts
//!
//! * **plan-byte identity** — `dp_search_arena` returns the same `DpResult`
//!   as the reference `dp_search_with_micro_batches`, compared at the bit
//!   level (`f64::to_bits` for cost, exact strategy sequence, exact
//!   memory bytes), and
//! * **dominance safety** — the dominated-strategy prefilter never removes
//!   a strategy the reference optimum uses (the dominance lemma of
//!   `galvatron_core::arena`, checked empirically).
//!
//! The vendored proptest stub has no shrinking, so this harness carries its
//! own: a failing draw is greedily minimized (fewer layers, fewer
//! strategies, smaller budget, simpler topology) while it keeps failing,
//! and the panic reports the *minimal* counterexample. Set
//! `PROPTEST_CASES` to raise the per-property case count (the nightly
//! `scripts/oracle_stress.sh` lane runs 2048).

use galvatron_cluster::{island_cluster, mixed_a100_rtx_cluster, rtx_titan_node, DeviceType, MIB};
use galvatron_core::{
    dominance_masks, dp_search_arena, dp_search_with_recompute, DirectCosts, DpArena, RecomputeMode,
};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::BertConfig;
use galvatron_strategy::{DecisionTreeBuilder, StrategySet};
use proptest::prelude::*;

/// One fuzzed instance, compact enough to shrink field-by-field.
#[derive(Debug, Clone)]
struct Case {
    /// 0 = flat 4-GPU PCIe, 1 = 3×2 RTX islands (6 GPUs), 2 = priced
    /// mixed A100+RTX (4 GPUs).
    topo: u8,
    /// Device-group size as a power of two: 1, 2 or 4.
    group_log2: u8,
    /// Encoder count (total layers = encoders + 2).
    encoders: u8,
    /// Bit 0: heads 4 vs 8; bit 1: seq 64 vs 128.
    shape: u8,
    /// Strategy-subset mask over the decision-tree set (empty → full set).
    keep_mask: u32,
    /// Bits 0–1: stage-batch shift; bit 2: 2 micro-batches; bit 3: 64 MiB
    /// granularity; bit 4: solve a 1-layer range; bits 5–7: its position.
    knobs: u32,
    /// Usable budget in 16 MiB units.
    budget_16m: u64,
    /// Recompute planes: 0 = off, 1 = on, 2 = auto (per-layer choice).
    recompute: u8,
}

fn recompute_mode(case: &Case) -> RecomputeMode {
    match case.recompute % 3 {
        0 => RecomputeMode::Off,
        1 => RecomputeMode::On,
        _ => RecomputeMode::Auto,
    }
}

fn build(
    case: &Case,
) -> (
    CostEstimator,
    galvatron_model::ModelSpec,
    StrategySet,
    Params,
) {
    let topology = match case.topo {
        0 => rtx_titan_node(4),
        1 => island_cluster(DeviceType::RtxTitan, 3, 2),
        _ => mixed_a100_rtx_cluster(1, 1, 2),
    };
    let estimator = CostEstimator::new(topology, EstimatorConfig::default());
    let heads = [4u64, 8][(case.shape & 1) as usize];
    let model = BertConfig {
        layers: case.encoders.max(1) as usize,
        hidden: heads * 64,
        heads,
        seq: [64u64, 128][((case.shape >> 1) & 1) as usize],
        vocab: 30522,
    }
    .build("fuzz");
    let group = 1usize << case.group_log2.min(2);
    let full = DecisionTreeBuilder::new(group).strategies();
    let kept: Vec<_> = full
        .iter()
        .enumerate()
        .filter(|(i, _)| case.keep_mask & (1 << (i % 32)) != 0)
        .map(|(_, s)| s.clone())
        .collect();
    let set = if kept.is_empty() {
        full
    } else {
        StrategySet::new(group, kept)
    };
    let n_layers = model.n_layers();
    let layer_range = if case.knobs & (1 << 4) != 0 {
        let pos = ((case.knobs >> 5) & 0b111) as usize % n_layers;
        pos..pos + 1
    } else {
        0..n_layers
    };
    let stage_batch = (group as u64) << (case.knobs & 0b11);
    let micro_batches = if case.knobs & (1 << 2) != 0 && stage_batch >= 2 * group as u64 {
        2
    } else {
        1
    };
    let params = Params {
        layer_range,
        stage_batch,
        micro_batches,
        act_stash_batch: stage_batch,
        usable_budget: case.budget_16m.clamp(1, 280) * 16 * MIB,
        granularity: if case.knobs & (1 << 3) != 0 {
            64 * MIB
        } else {
            16 * MIB
        },
    };
    (estimator, model, set, params)
}

#[derive(Debug, Clone)]
struct Params {
    layer_range: std::ops::Range<usize>,
    stage_batch: u64,
    micro_batches: usize,
    act_stash_batch: u64,
    usable_budget: u64,
    granularity: u64,
}

/// The differential property. `Ok(())` when the arena path is bit-identical
/// to the reference and the dominance filter is safe; `Err(reason)` with a
/// human-readable divergence description otherwise.
fn check(case: &Case) -> Result<(), String> {
    let (est, model, set, p) = build(case);
    let mode = recompute_mode(case);
    let reference = dp_search_with_recompute(
        &est,
        &model,
        p.layer_range.clone(),
        0,
        &set,
        p.stage_batch,
        p.usable_budget,
        p.granularity,
        p.micro_batches,
        p.act_stash_batch,
        mode,
        &DirectCosts,
    )
    .map_err(|e| format!("reference errored: {e:?}"))?;
    let mut arena = DpArena::new();
    let fast = dp_search_arena(
        &est,
        &model,
        p.layer_range.clone(),
        0,
        &set,
        p.stage_batch,
        p.usable_budget,
        p.granularity,
        p.micro_batches,
        p.act_stash_batch,
        mode,
        &DirectCosts,
        &mut arena,
    )
    .map_err(|e| format!("arena errored: {e:?}"))?;

    match (&reference, &fast) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a.cost.to_bits() != b.cost.to_bits() {
                return Err(format!("cost bits diverged: {} vs {}", a.cost, b.cost));
            }
            if a.strategies != b.strategies {
                return Err(format!(
                    "strategy bytes diverged: {:?} vs {:?}",
                    a.strategies, b.strategies
                ));
            }
            if a.memory_bytes != b.memory_bytes {
                return Err(format!(
                    "memory bytes diverged: {} vs {}",
                    a.memory_bytes, b.memory_bytes
                ));
            }
            if a.recompute != b.recompute {
                return Err(format!(
                    "recompute planes diverged: {:?} vs {:?}",
                    a.recompute, b.recompute
                ));
            }
        }
        (a, b) => {
            return Err(format!(
                "feasibility diverged: reference {}, arena {}",
                a.is_some(),
                b.is_some()
            ))
        }
    }

    // Dominance safety: no strategy on the reference optimum may be
    // removed by the prefilter.
    if let Some(reference) = &reference {
        let masks = dominance_masks(
            &est,
            &model,
            p.layer_range.clone(),
            0,
            &set,
            p.stage_batch,
            p.granularity,
            p.micro_batches,
            p.act_stash_batch,
            mode,
            &DirectCosts,
        )
        .map_err(|e| format!("dominance_masks errored: {e:?}"))?;
        let planes = mode.planes();
        let n_strats = set.len();
        for (li, chosen) in reference.strategies.iter().enumerate() {
            let si = set
                .strategies()
                .iter()
                .position(|s| s == chosen)
                .expect("optimum strategy is in the set");
            let rc = reference.recompute.get(li).copied().unwrap_or(false);
            let plane = planes
                .iter()
                .position(|&p| p == rc)
                .expect("optimum plane is scanned");
            let di = plane * n_strats + si;
            if masks.get(li).is_some_and(|m| m[di]) {
                return Err(format!(
                    "dominance filter removed the optimal decision {chosen:?} \
                     (recompute {rc}) at layer {li}"
                ));
            }
        }
    }
    Ok(())
}

/// All single-step simplifications of a case, most aggressive first.
fn shrink_candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if case.encoders > 1 {
        out.push(Case {
            encoders: 1,
            ..case.clone()
        });
        out.push(Case {
            encoders: case.encoders - 1,
            ..case.clone()
        });
    }
    if case.topo != 0 {
        out.push(Case {
            topo: 0,
            ..case.clone()
        });
    }
    if case.group_log2 > 0 {
        out.push(Case {
            group_log2: case.group_log2 - 1,
            ..case.clone()
        });
    }
    // Drop one kept strategy at a time (never shrinking to the implicit
    // full set, which would grow the instance).
    for bit in 0..32 {
        let cleared = case.keep_mask & !(1u32 << bit);
        if cleared != case.keep_mask && cleared != 0 {
            out.push(Case {
                keep_mask: cleared,
                ..case.clone()
            });
        }
    }
    if case.budget_16m > 1 {
        out.push(Case {
            budget_16m: case.budget_16m / 2,
            ..case.clone()
        });
    }
    for simpler_knobs in [
        case.knobs & !0b11,
        case.knobs & !(1 << 2),
        case.knobs & !(1 << 3),
    ] {
        if simpler_knobs != case.knobs {
            out.push(Case {
                knobs: simpler_knobs,
                ..case.clone()
            });
        }
    }
    if case.shape != 0 {
        out.push(Case {
            shape: 0,
            ..case.clone()
        });
    }
    if !case.recompute.is_multiple_of(3) {
        out.push(Case {
            recompute: 0,
            ..case.clone()
        });
    }
    out
}

/// Greedy shrink: repeatedly take the first single-step simplification
/// that still fails, until none does. The result is 1-minimal — no single
/// simplification preserves the failure.
fn shrink(mut case: Case) -> (Case, String) {
    let mut reason = check(&case).expect_err("shrink starts from a failing case");
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&case) {
            if let Err(e) = check(&cand) {
                case = cand;
                reason = e;
                improved = true;
                break;
            }
        }
        if !improved {
            return (case, reason);
        }
    }
}

fn assert_holds(case: &Case) {
    if check(case).is_err() {
        let (minimal, reason) = shrink(case.clone());
        panic!("minimal counterexample {minimal:?}: {reason}");
    }
}

/// Per-property case count: `PROPTEST_CASES` when set (the vendored stub
/// does not read the environment itself), else a CI-friendly default.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        (0u8..3, 0u8..3, 1u8..5, 0u8..3),
        0u8..4,
        any::<u32>(),
        any::<u32>(),
        1u64..281,
    )
        .prop_map(
            |((topo, group_log2, encoders, recompute), shape, keep_mask, knobs, budget_16m)| Case {
                topo,
                group_log2,
                encoders,
                shape,
                keep_mask,
                knobs,
                budget_16m,
                recompute,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arena DP ≡ reference, byte for byte, on arbitrary instances.
    #[test]
    fn arena_plan_bytes_match_serial(case in case_strategy()) {
        assert_holds(&case);
    }

    /// The dominated-strategy prefilter never removes a strategy that the
    /// reference optimum uses (checked inside the same differential body
    /// so a violation shrinks like any other divergence).
    #[test]
    fn dominance_filter_never_removes_an_optimal_strategy(case in case_strategy()) {
        assert_holds(&case);
    }
}

/// The shrinker itself must terminate and produce a failing case when
/// handed one. Exercised with a synthetic failure predicate so the test
/// does not depend on a real solver bug existing.
#[test]
fn shrinker_reaches_a_one_minimal_case() {
    let case = Case {
        topo: 2,
        group_log2: 2,
        encoders: 4,
        shape: 3,
        keep_mask: 0xdead_beef,
        knobs: 0b1111,
        budget_16m: 200,
        recompute: 2,
    };
    // All single-step simplifications of a passing case must also pass
    // (sanity: shrink_candidates only simplifies).
    assert!(check(&case).is_ok());
    for cand in shrink_candidates(&case) {
        assert!(check(&cand).is_ok(), "simplification broke a passing case");
    }
    assert!(shrink_candidates(&case).len() > 4);
}
