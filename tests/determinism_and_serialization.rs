//! Reproducibility and serialization: same inputs → same outputs; plans and
//! reports round-trip through JSON.

use galvatron::prelude::*;
use galvatron_strategy::Paradigm;

fn plan_fixture() -> (galvatron::model::ModelSpec, ParallelPlan) {
    let model = PaperModel::VitHuge32.spec();
    let plan = ParallelPlan::uniform(
        "fixture",
        model.n_layers(),
        8,
        galvatron::strategy::IntraStageStrategy::pure(Paradigm::ShardedData, 8).unwrap(),
        32,
    );
    (model, plan)
}

#[test]
fn simulation_is_deterministic_per_seed() {
    let (model, plan) = plan_fixture();
    let topo = TestbedPreset::RtxTitan8.topology();
    let a = Simulator::new(topo.clone(), SimulatorConfig::default().with_seed(1))
        .execute(&model, &plan)
        .unwrap();
    let b = Simulator::new(topo.clone(), SimulatorConfig::default().with_seed(1))
        .execute(&model, &plan)
        .unwrap();
    assert_eq!(a.iteration_time, b.iteration_time);
    assert_eq!(a.peak_memory_per_stage, b.peak_memory_per_stage);

    let c = Simulator::new(topo, SimulatorConfig::default().with_seed(2))
        .execute(&model, &plan)
        .unwrap();
    assert_ne!(
        a.iteration_time, c.iteration_time,
        "noise must vary by seed"
    );
    // ... but only within the configured noise band.
    let rel = (a.iteration_time / c.iteration_time - 1.0).abs();
    assert!(rel < 0.10, "seed variation too large: {rel:.3}");
}

#[test]
fn planning_is_deterministic() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::SwinHuge32.spec();
    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 64,
        ..OptimizerConfig::default()
    });
    let a = optimizer
        .optimize(&model, &topo, 12 * GIB)
        .unwrap()
        .unwrap();
    let b = optimizer
        .optimize(&model, &topo, 12 * GIB)
        .unwrap()
        .unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.throughput_samples_per_sec, b.throughput_samples_per_sec);
}

#[test]
fn plans_round_trip_through_json() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();
    let outcome = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, 16 * GIB)
    .unwrap()
    .unwrap();

    let json = serde_json::to_string(&outcome.plan).unwrap();
    let back: ParallelPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(outcome.plan, back);
    back.validate(model.n_layers(), 8).unwrap();

    // A deserialised plan simulates identically.
    let sim = Simulator::new(topo, SimulatorConfig::default());
    let a = sim.execute(&model, &outcome.plan).unwrap();
    let b = sim.execute(&model, &back).unwrap();
    assert_eq!(a.iteration_time, b.iteration_time);
}

#[test]
fn reports_and_topologies_serialize() {
    let topo = TestbedPreset::RtxTitan16.topology();
    let json = serde_json::to_string(&topo).unwrap();
    let back: ClusterTopology = serde_json::from_str(&json).unwrap();
    assert_eq!(topo, back);

    let (model, plan) = plan_fixture();
    let report = Simulator::new(
        TestbedPreset::RtxTitan8.topology(),
        SimulatorConfig::default(),
    )
    .execute(&model, &plan)
    .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: ExecutionReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn traces_are_consistent_with_reports() {
    let (model, plan) = plan_fixture();
    let sim = Simulator::new(
        TestbedPreset::RtxTitan8.topology(),
        SimulatorConfig::default(),
    );
    let (report, trace) = sim.execute_traced(&model, &plan).unwrap();
    assert_eq!(trace.len(), report.task_count);
    let end = trace.iter().fold(0.0f64, |acc, e| acc.max(e.end));
    assert!((end - report.iteration_time).abs() < 1e-9);
    for entry in &trace {
        assert!(entry.end >= entry.start);
        assert!(entry.start >= 0.0);
    }
}
