//! Heterogeneous clusters — the paper's §6 future work ("more challenging
//! scenarios, e.g., heterogeneous environments"), implemented: per-device
//! GPU specs, slowest-member group pacing, and capacity-aware pipeline
//! partitioning.

use galvatron::cluster::topology::TopologyLevel;
use galvatron::core::PipelinePartitioner;
use galvatron::prelude::*;

/// Two islands: four A100s and four RTX TITANs, joined by InfiniBand.
fn mixed_cluster() -> ClusterTopology {
    let mut specs = vec![GpuSpec::a100(); 4];
    specs.extend(vec![GpuSpec::rtx_titan(); 4]);
    ClusterTopology::heterogeneous(
        specs,
        vec![
            TopologyLevel {
                group_size: 4,
                link: Link::of_class(LinkClass::NvLink),
            },
            TopologyLevel {
                group_size: 8,
                link: Link::of_class(LinkClass::InfiniBand100),
            },
        ],
    )
    .expect("valid mixed topology")
}

#[test]
fn group_speed_is_the_slowest_member() {
    let topo = mixed_cluster();
    assert!(topo.is_heterogeneous());
    let a100 = GpuSpec::a100().sustained_flops;
    let titan = GpuSpec::rtx_titan().sustained_flops;
    assert_eq!(topo.group_sustained_flops(0, 4).unwrap(), a100);
    assert_eq!(topo.group_sustained_flops(4, 4).unwrap(), titan);
    // A group spanning both islands crawls at TITAN speed.
    assert_eq!(topo.group_sustained_flops(0, 8).unwrap(), titan);
    assert!(topo.group_sustained_flops(6, 4).is_err());

    // Homogeneous topologies are unaffected.
    let homo = TestbedPreset::RtxTitan8.topology();
    assert!(!homo.is_heterogeneous());
    assert_eq!(homo.group_sustained_flops(0, 8).unwrap(), titan);
}

#[test]
fn capacity_aware_partition_feeds_the_fast_island_more_layers() {
    let model = PaperModel::BertHuge32.spec();
    let caps = [
        GpuSpec::a100().sustained_flops,
        GpuSpec::rtx_titan().sustained_flops,
    ];
    let parts = PipelinePartitioner::ByFlops.partition_with_capacities(&model, 2, Some(&caps));
    let (fast, slow) = (parts[0], parts[1]);
    assert!(
        fast.1 - fast.0 > 2 * (slow.1 - slow.0),
        "A100 stage got {fast:?}, TITAN stage {slow:?}"
    );
    // Uniform capacities reduce to the plain partition.
    let plain = PipelinePartitioner::ByFlops.partition(&model, 2);
    let uniform =
        PipelinePartitioner::ByFlops.partition_with_capacities(&model, 2, Some(&[1.0, 1.0]));
    assert_eq!(plain, uniform);
}

#[test]
fn planner_balances_stage_times_across_mixed_islands() {
    let topo = mixed_cluster();
    let model = PaperModel::BertHuge32.spec();
    let outcome = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, 16 * GIB)
    .unwrap()
    .expect("feasible on the mixed cluster");
    outcome.plan.validate(model.n_layers(), 8).unwrap();

    let sim = Simulator::new(
        topo.clone(),
        SimulatorConfig::default().with_budget(16 * GIB),
    );
    let report = sim.execute(&model, &outcome.plan).unwrap();
    assert!(!report.oom);

    if outcome.plan.pp_degree() == 2 {
        // The capacity-aware cut should keep the two stages' busy times
        // within ~2× of each other despite the ~4× speed gap.
        let busy0 = report.busy_compute[0];
        let busy1 = report.busy_compute[1];
        let ratio = busy0.max(busy1) / busy0.min(busy1).max(1e-9);
        assert!(ratio < 2.0, "stage busy imbalance {ratio:.2}");
    }
}

#[test]
fn heterogeneous_beats_naive_equal_partitioning() {
    // The same plan shape with an equal layer split must not beat the
    // planner's capacity-aware choice.
    let topo = mixed_cluster();
    let model = PaperModel::BertHuge32.spec();
    let optimizer = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    });
    let tuned = optimizer
        .optimize(&model, &topo, 16 * GIB)
        .unwrap()
        .unwrap();

    // Naive: force equal-count 2-way PP with DP4 stages.
    let bounds = PipelinePartitioner::ByLayerCount.partition(&model, 2);
    let dp4 = galvatron::strategy::IntraStageStrategy::pure(galvatron::strategy::Paradigm::Data, 4)
        .unwrap();
    let naive = ParallelPlan {
        origin: "naive".into(),
        global_batch: tuned.plan.global_batch,
        micro_batches: 4,
        schedule: Default::default(),
        stages: bounds
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| galvatron::strategy::StagePlan {
                layer_start: a,
                layer_end: b,
                device_base: i * 4,
                device_count: 4,
                layer_strategies: vec![dp4.clone(); b - a],
                layer_recompute: Vec::new(),
            })
            .collect(),
    };
    let sim = Simulator::new(topo, SimulatorConfig::default());
    let tuned_tpt = sim.execute(&model, &tuned.plan).unwrap().throughput;
    let naive_tpt = sim.execute(&model, &naive).unwrap().throughput;
    assert!(
        tuned_tpt >= naive_tpt * 0.95,
        "tuned {tuned_tpt:.2} vs naive {naive_tpt:.2}"
    );
}

#[test]
fn heterogeneous_topology_serializes() {
    let topo = mixed_cluster();
    let json = serde_json::to_string(&topo).unwrap();
    let back: ClusterTopology = serde_json::from_str(&json).unwrap();
    assert_eq!(topo, back);
    assert!(back.is_heterogeneous());
    // Legacy JSON without device_specs still loads.
    let homo = TestbedPreset::RtxTitan8.topology();
    let mut value: serde_json::Value = serde_json::to_value(&homo).unwrap();
    value.as_object_mut().unwrap().remove("device_specs");
    let back: ClusterTopology = serde_json::from_value(value).unwrap();
    assert_eq!(back, homo);
}
