//! Mixed-precision training (fp16 compute, fp32 Adam master state) as a
//! configuration of the existing accounting: parameter, gradient,
//! activation and communication bytes all halve; optimizer state grows to
//! 12 B/param (fp32 master + m + v). The paper trains fp32 on RTX TITANs;
//! this is the knob a practitioner flips first when memory is tight.

use galvatron::model::DType;
use galvatron::prelude::*;
use galvatron_strategy::{IntraStageStrategy, Paradigm};

/// Mixed-precision Adam: fp16 params (2) + fp16 grads (2) + fp32 master,
/// m, v (12) = 16 B/param — same total as fp32 Adam, but the *sharded* and
/// *communicated* portions shrink.
const MIXED_OPTIMIZER_BYTES: u64 = 12;

#[test]
fn halving_precision_halves_activations_and_comm() {
    let fp32 = PaperModel::BertHuge32.spec();
    let fp16 = PaperModel::BertHuge32.spec().with_dtype(DType::F16);
    assert_eq!(
        fp16.activation_bytes_per_sample() * 2,
        fp32.activation_bytes_per_sample()
    );
    assert_eq!(fp16.total_param_bytes() * 2, fp32.total_param_bytes());

    // Gradient all-reduce volume halves → DP comm time roughly halves.
    let topo = TestbedPreset::RtxTitan8.topology();
    let est = CostEstimator::with_defaults(topo);
    let strategy = IntraStageStrategy::pure(Paradigm::Data, 8).unwrap();
    let layer32 = &fp32.layers[5];
    let c32 = est
        .layer_cost(layer32, fp32.dtype, &strategy, 8, 0)
        .unwrap();
    let c16 = est
        .layer_cost(&fp16.layers[5], fp16.dtype, &strategy, 8, 0)
        .unwrap();
    let ratio = c16.dp_allreduce / c32.dp_allreduce;
    assert!((ratio - 0.5).abs() < 0.05, "comm ratio {ratio:.3}");
}

#[test]
fn mixed_precision_unlocks_larger_batches() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let budget = 8 * GIB;

    let fp32 = PaperModel::BertHuge32.spec();
    let plan32 = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 256,
        ..OptimizerConfig::default()
    })
    .optimize(&fp32, &topo, budget)
    .unwrap()
    .expect("fp32 fits 8 GiB");

    let fp16 = PaperModel::BertHuge32.spec().with_dtype(DType::F16);
    let est_cfg = galvatron::estimator::EstimatorConfig {
        optimizer_bytes_per_param: MIXED_OPTIMIZER_BYTES,
        include_boundary_comm: true,
        ..galvatron::estimator::EstimatorConfig::default()
    };
    let plan16 = GalvatronOptimizer::new(OptimizerConfig {
        estimator: est_cfg,
        max_batch: 256,
        ..OptimizerConfig::default()
    })
    .optimize(&fp16, &topo, budget)
    .unwrap()
    .expect("fp16 fits 8 GiB");

    assert!(
        plan16.plan.global_batch >= 2 * plan32.plan.global_batch,
        "fp16 batch {} vs fp32 batch {}",
        plan16.plan.global_batch,
        plan32.plan.global_batch
    );
    assert!(plan16.throughput_samples_per_sec > plan32.throughput_samples_per_sec);

    // The simulator confirms the fp16 plan fits.
    let sim_cfg = SimulatorConfig {
        optimizer_bytes_per_param: MIXED_OPTIMIZER_BYTES,
        ..SimulatorConfig::default().with_budget(budget)
    };
    let report = Simulator::new(topo, sim_cfg)
        .execute(&fp16, &plan16.plan)
        .unwrap();
    assert!(!report.oom);
}
