//! The correctness contract behind the whole search space: **every hybrid
//! strategy Galvatron may choose computes the same loss and gradients as
//! single-device execution** — verified numerically by the reference
//! executor on virtual devices, for all 22 eight-GPU candidates, mixed
//! per-layer assignments (exercising Slice-Gather), and pipelined plans
//! with micro-batches.

use galvatron::exec::{execute_parallel, execute_serial, Matrix, MlpModel};
use galvatron::strategy::{
    DecisionTreeBuilder, IntraStageStrategy, Paradigm, ParallelPlan, StagePlan,
};

const DIM: usize = 8;
const HIDDEN: usize = 16;

fn assert_equivalent(
    serial: &galvatron::exec::ExecutionResult,
    parallel: &galvatron::exec::ExecutionResult,
    label: &str,
) {
    let loss_err = (serial.loss - parallel.loss).abs() / serial.loss.max(1e-9);
    assert!(loss_err < 1e-4, "{label}: loss err {loss_err}");
    assert!(
        serial.output.max_abs_diff(&parallel.output) < 1e-3,
        "{label}: outputs differ"
    );
    for (l, ((s1, s2), (p1, p2))) in serial.grads.iter().zip(&parallel.grads).enumerate() {
        assert!(
            s1.max_abs_diff(p1) < 1e-2 && s2.max_abs_diff(p2) < 1e-2,
            "{label}: layer {l} grads differ (dW1 {}, dW2 {})",
            s1.max_abs_diff(p1),
            s2.max_abs_diff(p2)
        );
    }
}

#[test]
fn all_22_candidate_strategies_are_gradient_equivalent() {
    let model = MlpModel::random(2, DIM, HIDDEN, 77);
    let x = Matrix::random(16, DIM, 78);
    let serial = execute_serial(&model, &x);

    let mut checked = 0;
    let mut pp = 1usize;
    while pp <= 8 {
        let group = 8 / pp;
        // Even per-stage split of the 2-layer model only works for pp ≤ 2;
        // larger PP degrees are covered by the pipeline test below.
        if pp <= 2 {
            for strategy in DecisionTreeBuilder::new(group).strategies().iter() {
                let per = model.n_layers() / pp;
                let stages: Vec<StagePlan> = (0..pp)
                    .map(|i| StagePlan {
                        layer_start: i * per,
                        layer_end: (i + 1) * per,
                        device_base: i * group,
                        device_count: group,
                        layer_strategies: vec![strategy.clone(); per],
                        layer_recompute: Vec::new(),
                    })
                    .collect();
                let plan = ParallelPlan {
                    origin: strategy.label(),
                    global_batch: 16,
                    micro_batches: 1,
                    schedule: Default::default(),
                    stages,
                };
                let parallel = execute_parallel(&model, &plan, &x).unwrap();
                assert_equivalent(&serial, &parallel, &strategy.label());
                checked += 1;
            }
        }
        pp *= 2;
    }
    assert!(checked >= 14, "covered {checked} strategies");
}

#[test]
fn mixed_per_layer_strategies_exercise_slice_gather() {
    // Adjacent layers with different layouts: DP8 → TP8 (the paid gather),
    // TP8 → DP8 (the free slice), SDP mixtures in between.
    let model = MlpModel::random(4, DIM, HIDDEN, 21);
    let x = Matrix::random(16, DIM, 22);
    let serial = execute_serial(&model, &x);

    let mk = |axes: &[(Paradigm, usize)]| {
        IntraStageStrategy::new(
            axes.iter()
                .map(|&(p, d)| galvatron::strategy::StrategyAxis::new(p, d))
                .collect(),
        )
        .unwrap()
    };
    let plan = ParallelPlan {
        origin: "mixed".into(),
        global_batch: 16,
        micro_batches: 1,
        schedule: Default::default(),
        stages: vec![StagePlan {
            layer_start: 0,
            layer_end: 4,
            device_base: 0,
            device_count: 8,
            layer_strategies: vec![
                mk(&[(Paradigm::Data, 8)]),
                mk(&[(Paradigm::Tensor, 8)]),
                mk(&[(Paradigm::ShardedData, 4), (Paradigm::Tensor, 2)]),
                mk(&[(Paradigm::Data, 2), (Paradigm::Tensor, 4)]),
            ],
            layer_recompute: Vec::new(),
        }],
    };
    let parallel = execute_parallel(&model, &plan, &x).unwrap();
    assert_equivalent(&serial, &parallel, "DP8→TP8→SDP4-TP2→DP2-TP4");
}

#[test]
fn pipelined_micro_batched_plans_are_gradient_equivalent() {
    let model = MlpModel::random(4, DIM, HIDDEN, 33);
    let x = Matrix::random(16, DIM, 34);
    let serial = execute_serial(&model, &x);

    for (micro_batches, schedule) in [
        (1usize, galvatron::strategy::PipelineSchedule::GPipe),
        (4, galvatron::strategy::PipelineSchedule::GPipe),
        (4, galvatron::strategy::PipelineSchedule::OneFOneB),
    ] {
        let plan = ParallelPlan {
            origin: "pp4".into(),
            global_batch: 16,
            micro_batches,
            schedule,
            stages: (0..4)
                .map(|i| StagePlan {
                    layer_start: i,
                    layer_end: i + 1,
                    device_base: i * 2,
                    device_count: 2,
                    layer_strategies: vec![IntraStageStrategy::pure(Paradigm::Data, 2).unwrap(); 1],
                    layer_recompute: Vec::new(),
                })
                .collect(),
        };
        let parallel = execute_parallel(&model, &plan, &x).unwrap();
        assert_equivalent(&serial, &parallel, &format!("pp4 m={micro_batches}"));
    }
}

#[test]
fn planner_output_executes_equivalently() {
    // Close the full loop: a plan produced by the actual Galvatron search
    // (on a toy model description) executes gradient-equivalently.
    use galvatron::prelude::*;

    let n_layers = 4;
    // Describe a matching toy workload to the planner: any small model
    // works since we only need a *valid* plan shape for 8 devices.
    let desc = galvatron::model::BertConfig {
        layers: n_layers - 2,
        hidden: 256,
        heads: 4,
        seq: 64,
        vocab: 512,
    }
    .build("toy");
    assert_eq!(desc.n_layers(), n_layers);

    let outcome = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 16,
        ..OptimizerConfig::default()
    })
    .optimize(&desc, &TestbedPreset::RtxTitan8.topology(), 20 * GIB)
    .unwrap()
    .expect("toy model fits");
    let plan = outcome.plan;

    let model = MlpModel::random(n_layers, DIM, HIDDEN, 55);
    let x = Matrix::random(plan.global_batch, DIM, 56);
    let serial = execute_serial(&model, &x);
    let parallel = execute_parallel(&model, &plan, &x).unwrap();
    assert_equivalent(&serial, &parallel, "planner-produced plan");
}
