//! The 1F1B (PipeDream-flush) pipeline schedule — the alternative the paper
//! leaves as future work ("We select GPipe as the default PP in this
//! approach and the rest (e.g., PipeDream) are left as future work",
//! §3.1.1), implemented end-to-end: simulator schedule, estimator memory
//! model, and planner option.

use galvatron::core::PipelinePartitioner;
use galvatron::prelude::*;
use galvatron::strategy::PipelineSchedule;
use galvatron_strategy::IntraStageStrategy;

fn pipeline_plan(
    model: &galvatron::model::ModelSpec,
    batch: usize,
    micro_batches: usize,
    schedule: PipelineSchedule,
) -> ParallelPlan {
    let bounds = PipelinePartitioner::ByLayerCount.partition(model, 8);
    let stages = bounds
        .iter()
        .enumerate()
        .map(|(i, &(start, end))| galvatron::strategy::StagePlan {
            layer_start: start,
            layer_end: end,
            device_base: i,
            device_count: 1,
            layer_strategies: vec![IntraStageStrategy::single_device(); end - start],
            layer_recompute: Vec::new(),
        })
        .collect();
    ParallelPlan {
        origin: format!("{schedule:?}"),
        global_batch: batch,
        micro_batches,
        schedule,
        stages,
    }
}

#[test]
fn one_f_one_b_caps_the_activation_stash() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    let sim = Simulator::new(topo, SimulatorConfig::deterministic());

    let gpipe = sim
        .execute(
            &model,
            &pipeline_plan(&model, 64, 32, PipelineSchedule::GPipe),
        )
        .unwrap();
    let f1b1 = sim
        .execute(
            &model,
            &pipeline_plan(&model, 64, 32, PipelineSchedule::OneFOneB),
        )
        .unwrap();

    // GPipe keeps 32 micro-stashes live on every stage; 1F1B at most
    // P − s ≤ 8. Early stages should see a large reduction.
    assert!(
        f1b1.peak_memory() < gpipe.peak_memory() / 2,
        "1F1B {:.2} GiB vs GPipe {:.2} GiB",
        f1b1.peak_memory() as f64 / GIB as f64,
        gpipe.peak_memory() as f64 / GIB as f64
    );
    // Same bubble structure: iteration times within a few percent.
    let ratio = f1b1.iteration_time / gpipe.iteration_time;
    assert!((0.9..=1.1).contains(&ratio), "time ratio {ratio:.3}");
}

#[test]
fn in_flight_formula_matches_the_simulated_peaks() {
    // Stage 0 of a P-stage 1F1B pipeline holds P in-flight stashes; the
    // last stage holds 1. Verify the gradient across stages.
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    let sim = Simulator::new(topo, SimulatorConfig::deterministic());
    let report = sim
        .execute(
            &model,
            &pipeline_plan(&model, 64, 32, PipelineSchedule::OneFOneB),
        )
        .unwrap();
    let first = report.peak_memory_per_stage.first().copied().unwrap();
    let last = report.peak_memory_per_stage.last().copied().unwrap();
    // Model state per stage is comparable; the in-flight stash gradient
    // (P stashes on stage 0 vs 1 on stage P−1) shows up on top of it.
    assert!(
        first as f64 > last as f64 * 1.2,
        "first-stage peak {first} should exceed last-stage {last}"
    );
}

#[test]
fn estimator_memory_model_matches_the_simulator_for_1f1b() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    let plan = pipeline_plan(&model, 64, 32, PipelineSchedule::OneFOneB);
    let est = CostEstimator::with_defaults(topo.clone())
        .plan_cost(&model, &plan)
        .unwrap();
    let sim = Simulator::new(topo, SimulatorConfig::deterministic())
        .execute(&model, &plan)
        .unwrap();
    for (stage, (e, s)) in est
        .stage_peak_memory
        .iter()
        .zip(&sim.peak_memory_per_stage)
        .enumerate()
    {
        // The estimator assumes the full in-flight window is reached — a
        // safe upper bound; the simulator's contention can keep the window
        // partially drained. Require soundness (est ≥ sim) and tightness
        // within the window factor.
        let ratio = *e as f64 / *s as f64;
        assert!(
            (0.95..2.5).contains(&ratio),
            "stage {stage}: est {e} vs sim {s} (ratio {ratio:.3})"
        );
    }
}

#[test]
fn planner_exploits_1f1b_at_tight_budgets() {
    // With the smaller stash, the 1F1B planner can run bigger batches (or
    // at least never worse) under the same budget.
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge48.spec();
    let budget = 8 * GIB;
    let gpipe = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 64,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap()
    .expect("feasible");
    let f1b1 = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 64,
        schedule: PipelineSchedule::OneFOneB,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap()
    .expect("feasible");

    assert!(
        f1b1.throughput_samples_per_sec >= gpipe.throughput_samples_per_sec * 0.98,
        "1F1B {:.2} vs GPipe {:.2}",
        f1b1.throughput_samples_per_sec,
        gpipe.throughput_samples_per_sec
    );
    // And the emitted plan carries the schedule.
    assert_eq!(f1b1.plan.schedule, PipelineSchedule::OneFOneB);
}

#[test]
fn schedule_field_is_backward_compatible_in_json() {
    // Plans serialised before the schedule existed still deserialise
    // (defaulting to GPipe).
    let json = r#"{
        "origin": "legacy",
        "global_batch": 8,
        "micro_batches": 1,
        "stages": [{
            "layer_start": 0, "layer_end": 2,
            "device_base": 0, "device_count": 1,
            "layer_strategies": [{"axes": []}, {"axes": []}]
        }]
    }"#;
    let plan: ParallelPlan = serde_json::from_str(json).unwrap();
    assert_eq!(plan.schedule, PipelineSchedule::GPipe);
}
