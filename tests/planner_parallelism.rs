//! The parallel planning engine must be an *exact* drop-in for the serial
//! Algorithm-1 sweep: identical plan, throughput and iteration time for
//! every zoo model × memory budget on the 8-GPU testbed, regardless of the
//! worker count, and cache hits must never change the selected plan.

use galvatron::prelude::*;
use galvatron_core::{GalvatronOptimizer, IncrementalEngine, OptimizeOutcome, OptimizerConfig};
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use proptest::prelude::*;

fn config() -> OptimizerConfig {
    // max_batch 32 keeps the full matrix fast while still exercising the
    // 8-consecutive-infeasible early stop on the tight budgets.
    OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    }
}

fn planner(jobs: usize, use_cache: bool, prune: bool) -> ParallelPlanner {
    planner_inc(jobs, use_cache, prune, false)
}

fn planner_inc(jobs: usize, use_cache: bool, prune: bool, incremental: bool) -> ParallelPlanner {
    ParallelPlanner::new(PlannerConfig {
        optimizer: config(),
        jobs,
        use_cache,
        prune,
        incremental,
        cache_max_entries: None,
        intern_max_entries: None,
    })
}

/// Byte-identical outcome comparison: plan equality plus bit-level float
/// equality on throughput and iteration time.
fn assert_same(a: &Option<OptimizeOutcome>, b: &Option<OptimizeOutcome>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.plan, b.plan, "{what}: plan diverged");
            assert_eq!(
                a.throughput_samples_per_sec.to_bits(),
                b.throughput_samples_per_sec.to_bits(),
                "{what}: throughput diverged ({} vs {})",
                a.throughput_samples_per_sec,
                b.throughput_samples_per_sec
            );
            assert_eq!(
                a.iteration_time.to_bits(),
                b.iteration_time.to_bits(),
                "{what}: iteration time diverged"
            );
        }
        (a, b) => panic!(
            "{what}: feasibility diverged (serial {}, parallel {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

#[test]
fn parallel_matches_serial_across_the_zoo() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let serial = GalvatronOptimizer::new(config());
    let parallel = planner(4, true, true);
    for model in PaperModel::ALL {
        let spec = model.spec();
        for budget_gb in [8u64, 12, 16, 20] {
            let budget = budget_gb * GIB;
            let reference = serial.optimize(&spec, &topology, budget).unwrap();
            let candidate = parallel.optimize(&spec, &topology, budget).unwrap();
            assert_same(
                &reference,
                &candidate,
                &format!("{} @ {budget_gb}G", model.name()),
            );
        }
    }
}

#[test]
fn outcome_is_invariant_in_the_worker_count() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();
    let reference = planner(1, false, false)
        .optimize(&model, &topology, 16 * GIB)
        .unwrap();
    for jobs in [2usize, 4, 8] {
        for (use_cache, prune) in [(false, false), (true, false), (false, true), (true, true)] {
            for incremental in [false, true] {
                let candidate = planner_inc(jobs, use_cache, prune, incremental)
                    .optimize(&model, &topology, 16 * GIB)
                    .unwrap();
                assert_same(
                    &reference,
                    &candidate,
                    &format!(
                        "jobs={jobs} cache={use_cache} prune={prune} incremental={incremental}"
                    ),
                );
            }
        }
    }
}

#[test]
fn warm_incremental_engine_reproduces_the_serial_plan() {
    // The ledger's monotone warm-starts and the intern table's replayed
    // kernels must not shift any plan, even when the engine is carried
    // across budgets and models (distinct contexts) in one sweep study.
    let topology = TestbedPreset::RtxTitan8.topology();
    let serial = GalvatronOptimizer::new(config());
    let planner = planner_inc(2, true, true, true);
    let engine = IncrementalEngine::new();
    let cache = DpCache::new();
    for model in [PaperModel::BertHuge32, PaperModel::VitHuge32] {
        let spec = model.spec();
        for budget_gb in [8u64, 12, 8] {
            let budget = budget_gb * GIB;
            let reference = serial.optimize(&spec, &topology, budget).unwrap();
            let candidate = planner
                .optimize_with_reuse(&spec, &topology, budget, Some(&cache), Some(&engine))
                .unwrap();
            assert_same(
                &reference,
                &candidate,
                &format!("warm engine, {} @ {budget_gb}G", model.name()),
            );
        }
    }
    let counters = engine.counters();
    assert!(counters.intern_hits > 0, "engine saw reuse: {counters:?}");
    assert!(counters.ledger_hits > 0, "ledger saw reuse: {counters:?}");
}

#[test]
fn warm_cache_reproduces_the_cold_plan() {
    let topology = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    // Pruning off: the bound watermark advances in worker-completion order,
    // so *which* candidates get pruned is timing-dependent — a warm run may
    // evaluate (and miss on) a candidate the cold run happened to skip.
    // The plan is identical either way; the zero-miss assertion below is
    // only meaningful for an exhaustive sweep.
    let planner = planner(4, true, false);
    let cache = DpCache::new();
    let cold = planner
        .optimize_with_cache(&model, &topology, 12 * GIB, &cache)
        .unwrap();
    let warm = planner
        .optimize_with_cache(&model, &topology, 12 * GIB, &cache)
        .unwrap();
    let warm = warm.expect("12 GiB is feasible for ViT-Huge-32");
    assert!(
        warm.stats.cache_hits > 0 && warm.stats.cache_misses == 0,
        "second run must be answered entirely from the cache \
         ({} hits, {} misses)",
        warm.stats.cache_hits,
        warm.stats.cache_misses
    );
    assert_same(&cold, &Some(warm), "cold vs warm cache");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Cache hits never change the selected plan: any (model, budget, jobs)
    /// combination planned against a pre-warmed shared cache selects exactly
    /// the plan the serial optimizer selects.
    #[test]
    fn cache_hits_never_change_the_plan(
        model_idx in 0usize..4,
        budget_gb in prop_oneof![Just(8u64), Just(12), Just(16), Just(20)],
        jobs in 1usize..=8,
    ) {
        // The four Table-1 "huge-32/48" shapes keep each case quick.
        let model = [
            PaperModel::BertHuge32,
            PaperModel::VitHuge32,
            PaperModel::SwinHuge32,
            PaperModel::T5Large32,
        ][model_idx]
            .spec();
        let topology = TestbedPreset::RtxTitan8.topology();
        let budget = budget_gb * GIB;

        let reference = GalvatronOptimizer::new(config())
            .optimize(&model, &topology, budget)
            .unwrap();

        let planner = planner(jobs, true, true);
        let cache = DpCache::new();
        // First pass warms the cache, second pass is served from it.
        let _ = planner.optimize_with_cache(&model, &topology, budget, &cache).unwrap();
        let warm = planner.optimize_with_cache(&model, &topology, budget, &cache).unwrap();
        assert_same(
            &reference,
            &warm,
            &format!("warm cache, jobs={jobs}, {budget_gb}G"),
        );
    }
}
