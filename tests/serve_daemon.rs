//! End-to-end tests of the plan-serving daemon over real loopback TCP.
//!
//! These are the acceptance tests of the serving layer's three promises:
//!
//! * **fidelity** — a plan served over the wire is byte-identical to the
//!   answer a direct [`PlanService`] call gives, whether it was computed,
//!   cached, or coalesced onto another request's flight;
//! * **single-flight** — a herd of concurrent identical requests costs
//!   exactly one computation;
//! * **determinism under overload** — with queue capacity `Q`, exactly the
//!   requests beyond `Q` are refused, with a structured `Overloaded`
//!   error, while the daemon keeps answering control traffic.
//!
//! Worker pause/resume makes the concurrency deterministic: admission
//! control (caching, coalescing, shedding) runs in connection threads and
//! keeps working while the compute pool is frozen, so tests can build an
//! exact backlog or herd before releasing it.

use galvatron::cluster::{rtx_titan_node, GIB};
use galvatron::core::OptimizerConfig;
use galvatron::model::{BertConfig, ModelSpec};
use galvatron::obs::Obs;
use galvatron::planner::{PlanRequest, PlanService, PlannerConfig};
use galvatron::serve::{ErrorCode, PlanClient, PlanServer, ServeConfig, ServedPlan, WireResult};
use std::time::{Duration, Instant};

fn quick_planner() -> PlannerConfig {
    PlannerConfig {
        optimizer: OptimizerConfig {
            max_batch: 8,
            ..OptimizerConfig::default()
        },
        jobs: 2,
        ..PlannerConfig::default()
    }
}

fn bert(layers: usize, name: &str) -> ModelSpec {
    BertConfig {
        layers,
        hidden: 512,
        heads: 8,
        seq: 128,
        vocab: 30522,
    }
    .build(name)
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) {
    let started = Instant::now();
    while !done() {
        assert!(
            started.elapsed() < deadline,
            "condition not reached within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// N≥8 concurrent clients over overlapping requests: every wire answer is
/// byte-identical to the direct `PlanService` answer, the herd collapses
/// to one computation per distinct question, and a second pass is served
/// from cache — still byte-identical.
#[test]
fn loopback_herd_matches_direct_service_with_single_flight() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        planner: quick_planner(),
        ..ServeConfig::default()
    };
    let handle = PlanServer::start(config, Obs::noop()).expect("bind loopback");
    let addr = handle.addr();
    let topology = rtx_titan_node(8);

    // 3 distinct questions × 3 clients each = 9 concurrent clients.
    let questions: Vec<(String, ModelSpec, u64)> = [(2usize, 8u64), (3, 8), (4, 12)]
        .iter()
        .map(|&(layers, gib)| {
            (
                format!("bert-{layers}@{gib}g"),
                bert(layers, &format!("bert-{layers}")),
                gib * GIB,
            )
        })
        .collect();

    // The ground truth: the same planner config, called directly.
    let direct = PlanService::new(quick_planner());
    let expected: Vec<String> = questions
        .iter()
        .map(|(name, model, budget)| {
            let response = direct
                .submit(&PlanRequest {
                    name: name.clone(),
                    model: model.clone(),
                    topology: topology.clone(),
                    budget_bytes: *budget,
                })
                .expect("direct planning succeeds");
            let outcome = response.outcome.expect("feasible question");
            serde_json::to_string(&WireResult::Plan(ServedPlan::from(outcome)))
                .expect("serializable")
        })
        .collect();

    // Freeze the workers so the whole herd demonstrably overlaps: every
    // client is admitted (leader or follower) before anything computes.
    handle.pause();
    let clients: Vec<_> = (0..9)
        .map(|i| {
            let (name, model, budget) = questions[i % 3].clone();
            let topology = topology.clone();
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                (
                    i % 3,
                    client.plan(&name, model, topology, budget).expect("answer"),
                )
            })
        })
        .collect();
    // All nine requests are past admission once 6 followers coalesced and
    // 3 leaders occupy queue slots.
    wait_until(Duration::from_secs(10), || {
        handle.stats().coalesced == 6 && handle.queue_len() == 3
    });
    handle.resume();

    let mut coalesced_flags = 0;
    for client in clients {
        let (question, response) = client.join().expect("client thread");
        assert!(!response.cached, "first pass must not be cached");
        if response.coalesced {
            coalesced_flags += 1;
        }
        let body = serde_json::to_string(&response.result).expect("serializable");
        assert_eq!(
            body, expected[question],
            "wire answer differs from direct PlanService answer"
        );
    }
    assert_eq!(
        coalesced_flags, 6,
        "9 clients over 3 questions: 6 followers"
    );

    let stats = handle.stats();
    assert_eq!(
        stats.computed, 3,
        "single-flight: one computation per question"
    );
    assert_eq!(stats.coalesced, 6);
    assert_eq!(stats.shed, 0);

    // Second pass on a fresh connection: served from cache, still
    // byte-identical.
    let mut client = PlanClient::connect(addr).expect("connect");
    for (question, (name, model, budget)) in questions.iter().enumerate() {
        let response = client
            .plan(name, model.clone(), topology.clone(), *budget)
            .expect("cached answer");
        assert!(response.cached, "second pass must hit the response cache");
        let body = serde_json::to_string(&response.result).expect("serializable");
        assert_eq!(body, expected[question]);
    }
    assert_eq!(handle.stats().computed, 3, "cache pass computed nothing");

    // The metrics surface agrees, over both transports. Every serve
    // metric carries the per-replica `instance` label.
    let text = client.metrics().expect("metrics over JSONL");
    assert!(text.contains("serve_requests_total"));
    assert!(text.contains("serve_coalesced_total{instance=\"serve-0\"} 6"));
    let http = http_get_metrics(addr);
    assert!(http.starts_with("HTTP/1.1 200 OK"));
    assert!(http.contains("serve_computed_total{instance=\"serve-0\"} 3"));

    handle.shutdown();
}

/// Queue capacity `Q`, workers frozen: exactly the requests beyond `Q`
/// are refused with a structured `Overloaded` + `retry_after_ms`, control
/// traffic keeps flowing, and the backlog drains correctly on release.
#[test]
fn load_shedding_is_deterministic_and_server_stays_responsive() {
    let queue_capacity = 3;
    let config = ServeConfig {
        workers: 1,
        queue_capacity,
        planner: quick_planner(),
        ..ServeConfig::default()
    };
    let handle = PlanServer::start(config, Obs::noop()).expect("bind loopback");
    let addr = handle.addr();
    let topology = rtx_titan_node(8);

    handle.pause();
    // Fill the queue with exactly Q distinct computations.
    let fillers: Vec<_> = (0..queue_capacity)
        .map(|i| {
            let model = bert(2 + i, &format!("fill-{i}"));
            let topology = topology.clone();
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                client
                    .plan(&format!("fill-{i}"), model, topology, 8 * GIB)
                    .expect("filler answer")
            })
        })
        .collect();
    wait_until(Duration::from_secs(10), || {
        handle.queue_len() == queue_capacity
    });

    // Every request past capacity sheds, synchronously and structurally.
    let mut shed_client = PlanClient::connect(addr).expect("connect");
    for i in 0..4 {
        let model = bert(10 + i, &format!("excess-{i}"));
        let response = shed_client
            .plan(&format!("excess-{i}"), model, topology.clone(), 8 * GIB)
            .expect("shed response arrives");
        match response.result {
            WireResult::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded, "{e:?}");
                assert!(
                    e.retry_after_ms.is_some(),
                    "shed errors must carry a retry hint"
                );
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(handle.stats().shed, 4);
    assert_eq!(handle.queue_len(), queue_capacity, "shed must not queue");

    // The daemon still answers control traffic while saturated.
    let mut probe = PlanClient::connect(addr).expect("connect");
    assert_eq!(
        probe.ping().expect("ping"),
        galvatron::serve::PROTOCOL_VERSION
    );
    let stats = probe.stats().expect("stats");
    assert!(stats.paused);
    assert_eq!(stats.queue_depth, queue_capacity);

    // Release: the admitted backlog completes normally.
    handle.resume();
    for filler in fillers {
        let response = filler.join().expect("filler thread");
        assert!(
            matches!(response.result, WireResult::Plan(_)),
            "queued request must complete after resume, got {:?}",
            response.result
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.computed, queue_capacity as u64);
    assert_eq!(stats.shed, 4);
    handle.shutdown();
}

/// Request defects become structured wire errors — never panics, never a
/// dropped connection — and the daemon stays healthy afterwards.
#[test]
fn error_paths_produce_structured_wire_errors() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        planner: quick_planner(),
        ..ServeConfig::default()
    };
    let handle = PlanServer::start(config, Obs::noop()).expect("bind loopback");
    let mut client = PlanClient::connect(handle.addr()).expect("connect");
    let topology = rtx_titan_node(8);

    // Malformed JSON: answered (id 0 — there is no parseable id), not
    // disconnected.
    let raw = client.round_trip_raw("{this is not json").expect("answer");
    let response: galvatron::serve::WireResponse = serde_json::from_str(&raw).expect("parses");
    assert_eq!(response.id, 0);
    match &response.result {
        WireResult::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // Structurally invalid topology (device count disagrees with the
    // level cover): serde parses it, validate() must reject it.
    let good = serde_json::to_string(&galvatron::serve::WireRequest {
        id: 41,
        name: "tampered".to_string(),
        trace: None,
        body: galvatron::serve::RequestBody::Plan(galvatron::serve::PlanBody {
            model: bert(2, "tiny"),
            topology: topology.clone(),
            budget_bytes: 8 * GIB,
        }),
    })
    .unwrap();
    let tampered = good.replace("\"n_devices\":8", "\"n_devices\":12");
    assert_ne!(good, tampered, "tampering must hit the serialized field");
    let raw = client.round_trip_raw(&tampered).expect("answer");
    let response: galvatron::serve::WireResponse = serde_json::from_str(&raw).expect("parses");
    assert_eq!(response.id, 41);
    match &response.result {
        WireResult::Error(e) => {
            assert_eq!(e.code, ErrorCode::InvalidTopology, "{e:?}");
            assert!(e.retry_after_ms.is_none(), "defects are not retryable");
        }
        other => panic!("expected InvalidTopology, got {other:?}"),
    }

    // A zero budget is answerable — deterministically infeasible.
    let response = client
        .plan("zero-budget", bert(2, "tiny"), topology.clone(), 0)
        .expect("answer");
    match &response.result {
        WireResult::Error(e) => assert_eq!(e.code, ErrorCode::Infeasible, "{e:?}"),
        other => panic!("expected Infeasible, got {other:?}"),
    }

    // So is a model nothing in the search space can fit.
    let huge = BertConfig {
        layers: 24,
        hidden: 4096,
        heads: 32,
        seq: 512,
        vocab: 30522,
    }
    .build("bert-huge");
    let response = client
        .plan("huge@1g", huge, topology.clone(), GIB / 4)
        .expect("answer");
    match &response.result {
        WireResult::Error(e) => assert_eq!(e.code, ErrorCode::Infeasible, "{e:?}"),
        other => panic!("expected Infeasible, got {other:?}"),
    }

    // After all of that, the same connection still plans successfully.
    let response = client
        .plan("ok", bert(2, "tiny"), topology, 8 * GIB)
        .expect("answer");
    assert!(matches!(response.result, WireResult::Plan(_)));
    handle.shutdown();
}

/// A daemon restarted with a persisted cache answers its first request
/// from cache — zero computations — but ignores snapshots written under a
/// different planner configuration.
#[test]
fn persisted_cache_survives_restart_and_gates_on_config() {
    let dir = std::env::temp_dir().join(format!("galvatron-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let snapshot = dir.join("cache.json");
    let topology = rtx_titan_node(8);
    let model = bert(2, "tiny");

    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        persist_path: Some(snapshot.clone()),
        planner: quick_planner(),
        ..ServeConfig::default()
    };

    // Cold daemon: computes, then persists at shutdown.
    let cold = PlanServer::start(config.clone(), Obs::noop()).expect("bind");
    let mut client = PlanClient::connect(cold.addr()).expect("connect");
    let first = client
        .plan("tiny@8g", model.clone(), topology.clone(), 8 * GIB)
        .expect("answer");
    assert!(!first.cached);
    assert_eq!(cold.stats().computed, 1);
    drop(client);
    cold.shutdown();
    assert!(snapshot.exists(), "shutdown must write the snapshot");

    // Warm restart, same config: first request is a cache hit,
    // byte-identical, zero computations.
    let warm = PlanServer::start(config.clone(), Obs::noop()).expect("bind");
    let mut client = PlanClient::connect(warm.addr()).expect("connect");
    let again = client
        .plan("tiny@8g", model.clone(), topology.clone(), 8 * GIB)
        .expect("answer");
    assert!(
        again.cached,
        "warm restart must serve from the loaded cache"
    );
    assert_eq!(
        serde_json::to_string(&again.result).unwrap(),
        serde_json::to_string(&first.result).unwrap()
    );
    assert_eq!(warm.stats().computed, 0);
    drop(client);
    warm.shutdown();

    // Different planner constants: the snapshot must be ignored, not
    // served stale.
    let mut reconfigured = config;
    reconfigured.planner.optimizer.max_batch = 4;
    let fresh = PlanServer::start(reconfigured, Obs::noop()).expect("bind");
    let mut client = PlanClient::connect(fresh.addr()).expect("connect");
    let recomputed = client
        .plan("tiny@8g", model, topology, 8 * GIB)
        .expect("answer");
    assert!(
        !recomputed.cached,
        "a snapshot from another config must not be served"
    );
    assert_eq!(fresh.stats().computed, 1);
    drop(client);
    fresh.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful drain: a request being computed when shutdown starts is
/// finished and answered with its plan; requests still queued are answered
/// with a structured `ShuttingDown` error — never a dropped socket.
#[test]
fn shutdown_drains_in_flight_and_answers_queued_with_shutting_down() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        planner: quick_planner(),
        ..ServeConfig::default()
    };
    let handle = PlanServer::start(config, Obs::noop()).expect("bind loopback");
    let addr = handle.addr();
    let topology = rtx_titan_node(8);

    // Admit job A while the worker is frozen, then release it and wait
    // until the worker has *popped* it — A is now in flight.
    handle.pause();
    let in_flight = {
        let topology = topology.clone();
        std::thread::spawn(move || {
            let mut client = PlanClient::connect(addr).expect("connect");
            client
                .plan("in-flight", bert(2, "in-flight"), topology, 8 * GIB)
                .expect("in-flight answer arrives")
        })
    };
    wait_until(Duration::from_secs(10), || handle.queue_len() == 1);
    handle.resume();
    wait_until(Duration::from_secs(10), || handle.queue_len() == 0);

    // Re-freeze pops and queue job B behind the busy worker: B cannot be
    // popped until shutdown() unpauses — by which time the stop flag is
    // already up, so B's fate is deterministic.
    handle.pause();
    let queued = std::thread::spawn(move || {
        let mut client = PlanClient::connect(addr).expect("connect");
        client
            .plan("queued", bert(4, "queued"), topology, 8 * GIB)
            .expect("queued answer arrives — the socket must not be dropped")
    });
    wait_until(Duration::from_secs(10), || handle.queue_len() == 1);

    handle.shutdown();

    let in_flight = in_flight.join().expect("in-flight client");
    assert!(
        matches!(in_flight.result, WireResult::Plan(_)),
        "in-flight computation must finish through the drain, got {:?}",
        in_flight.result
    );
    let queued = queued.join().expect("queued client");
    match queued.result {
        WireResult::Error(e) => {
            assert_eq!(e.code, ErrorCode::ShuttingDown, "{e:?}");
            assert!(
                e.retry_after_ms.is_some(),
                "shutdown answers must carry a retry hint"
            );
        }
        other => panic!("expected ShuttingDown for the queued request, got {other:?}"),
    }
}

/// `GET /healthz` answers `200 ok` with the configured instance name, and
/// unknown paths get a 404 instead of a dropped connection.
#[test]
fn healthz_reports_instance_and_unknown_paths_get_404() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        planner: quick_planner(),
        instance: "serve-az1".to_string(),
        ..ServeConfig::default()
    };
    let handle = PlanServer::start(config, Obs::noop()).expect("bind loopback");
    let addr = handle.addr();

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("ok instance=serve-az1"), "{health}");

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404 Not Found"), "{missing}");

    // The instance label reaches the metrics exposition too.
    let mut client = PlanClient::connect(addr).expect("connect");
    client.ping().expect("ping");
    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("serve_requests_total{instance=\"serve-az1\"}"),
        "{metrics}"
    );
    handle.shutdown();
}

/// A raw HTTP scrape of the serving port.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("send");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read");
    body
}

fn http_get_metrics(addr: std::net::SocketAddr) -> String {
    http_get(addr, "/metrics")
}
