//! The hetero-path conformance suite: 120 seeded random instances.
//!
//! The per-stage-budget generalization threads every search — serial,
//! incremental, parallel-sweep and the hetero planner's Time objective —
//! through [`ClusterTopology::stage_usable_budgets`]. This suite draws
//! seeded random homogeneous instances and asserts all four paths agree
//! **bit-for-bit**: serialized plan bytes equal, throughput and
//! iteration-time `f64` bit patterns equal, feasibility identical. A
//! second pass pins the mixed-cluster paths (serial vs incremental vs
//! parallel) to each other the same way — heterogeneity must not make any
//! path diverge from the serial reference.
//!
//! [`ClusterTopology::stage_usable_budgets`]:
//!     galvatron_cluster::ClusterTopology::stage_usable_budgets

use galvatron_cluster::{
    mixed_a100_rtx_cluster, rtx_titan_node, rtx_titan_nodes, ClusterTopology, GIB, MIB,
};
use galvatron_core::{GalvatronOptimizer, IncrementalEngine, OptimizeOutcome, OptimizerConfig};
use galvatron_hetero::{HeteroPlanner, Objective};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_planner::{DpCache, ParallelPlanner, PlannerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Instance {
    topology: ClusterTopology,
    model: ModelSpec,
    budget: u64,
    config: OptimizerConfig,
}

fn draw_instance(seed: u64, mixed: bool) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let topology = if mixed {
        let per_island = [2usize, 4][rng.gen_range(0usize..2)];
        mixed_a100_rtx_cluster(1, 1, per_island)
    } else {
        match rng.gen_range(0usize..4) {
            0 => rtx_titan_node(2),
            1 => rtx_titan_node(4),
            2 => rtx_titan_node(8),
            _ => rtx_titan_nodes(2, 4),
        }
    };
    let heads = [8u64, 16][rng.gen_range(0usize..2)];
    let model = BertConfig {
        layers: rng.gen_range(2..=4),
        hidden: heads * 64,
        heads,
        seq: [128u64, 256][rng.gen_range(0usize..2)],
        vocab: 30522,
    }
    .build(&format!("hetero-oracle-{seed}"));
    // Bimodal budgets: tight ones exercise infeasibility and the
    // 8-consecutive-infeasible early stop, roomy ones real searches.
    let budget = if rng.gen_range(0..3) == 0 {
        rng.gen_range(600u64..1200) * MIB
    } else {
        rng.gen_range(2u64..=12) * GIB
    };
    let config = OptimizerConfig {
        max_batch: [8usize, 16][rng.gen_range(0usize..2)],
        ..OptimizerConfig::default()
    };
    Instance {
        topology,
        model,
        budget,
        config,
    }
}

/// Bit-level outcome equality: serialized plan bytes plus f64 bit patterns.
fn assert_bit_identical(a: &Option<OptimizeOutcome>, b: &Option<OptimizeOutcome>, what: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                serde_json::to_string(&a.plan).unwrap().into_bytes(),
                serde_json::to_string(&b.plan).unwrap().into_bytes(),
                "{what}: plan bytes diverged"
            );
            assert_eq!(
                a.throughput_samples_per_sec.to_bits(),
                b.throughput_samples_per_sec.to_bits(),
                "{what}: throughput bits diverged ({} vs {})",
                a.throughput_samples_per_sec,
                b.throughput_samples_per_sec
            );
            assert_eq!(
                a.iteration_time.to_bits(),
                b.iteration_time.to_bits(),
                "{what}: iteration-time bits diverged"
            );
        }
        (a, b) => panic!(
            "{what}: feasibility diverged (reference {}, candidate {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

fn all_paths_agree(instance: &Instance, what: &str) {
    let serial = GalvatronOptimizer::new(instance.config.clone())
        .optimize(&instance.model, &instance.topology, instance.budget)
        .expect("valid instance");

    let engine = IncrementalEngine::new();
    let incremental = GalvatronOptimizer::new(instance.config.clone())
        .optimize_incremental(
            &instance.model,
            &instance.topology,
            instance.budget,
            &engine,
        )
        .expect("valid instance");
    assert_bit_identical(&serial, &incremental, &format!("{what}: incremental"));
    // Replay against the warm engine: interned kernels must not drift.
    let replay = GalvatronOptimizer::new(instance.config.clone())
        .optimize_incremental(
            &instance.model,
            &instance.topology,
            instance.budget,
            &engine,
        )
        .expect("valid instance");
    assert_bit_identical(&serial, &replay, &format!("{what}: warm replay"));

    let planner = ParallelPlanner::new(PlannerConfig {
        optimizer: instance.config.clone(),
        jobs: 4,
        use_cache: true,
        prune: true,
        incremental: true,
        cache_max_entries: None,
        intern_max_entries: None,
    });
    let cache = DpCache::new();
    let parallel = planner
        .optimize_with_reuse(
            &instance.model,
            &instance.topology,
            instance.budget,
            Some(&cache),
            Some(&engine),
        )
        .expect("valid instance");
    assert_bit_identical(&serial, &parallel, &format!("{what}: parallel sweep"));

    let hetero = HeteroPlanner::new(instance.config.clone())
        .plan(
            &instance.model,
            &instance.topology,
            instance.budget,
            Objective::Time,
        )
        .expect("valid instance")
        .map(|h| h.outcome);
    assert_bit_identical(&serial, &hetero, &format!("{what}: hetero time objective"));
}

/// 100 seeded homogeneous instances: every search path, including the
/// hetero planner's Time objective, is bit-identical to the serial
/// reference.
#[test]
fn homogeneous_instances_are_bit_identical_across_every_path() {
    for seed in 0..100u64 {
        let instance = draw_instance(seed, false);
        all_paths_agree(&instance, &format!("seed {seed}"));
    }
}

/// 20 seeded mixed-cluster instances: the per-stage-budget machinery keeps
/// serial, incremental and parallel paths bit-identical on heterogeneous
/// topologies too.
#[test]
fn mixed_instances_are_bit_identical_across_every_path() {
    for seed in 1000..1020u64 {
        let instance = draw_instance(seed, true);
        all_paths_agree(&instance, &format!("mixed seed {seed}"));
    }
}
