//! The exhaustive-oracle conformance suite.
//!
//! Eq. 1's solver is the planner's foundation: every plan the optimizer,
//! the parallel planner, the memoization cache and the incremental engine
//! emit is built from its per-stage answers. This suite checks the solver
//! against an oracle that cannot be wrong: brute-force enumeration of every
//! per-layer strategy assignment on tiny instances (≤4 devices, ≤6 layers),
//! with the *same* quantized memory accounting the DP uses. Each seeded
//! random workload asserts that
//!
//! * the serial path (`dp_search_with_micro_batches`),
//! * the memoizing path (`CachedStageDp`, cold and warm),
//! * the incremental path (`IncrementalEngine`, cold and replayed from the
//!   intern table), and
//! * the composed path (cache over incremental — the planner's production
//!   stack)
//!
//! all agree bit-for-bit with each other and match the brute-force optimum,
//! including on infeasible instances (everyone must say `None`).

use galvatron_cluster::{rtx_titan_node, MIB};
use galvatron_core::{
    dp_search_with_micro_batches, DirectStageDp, DpResult, IncrementalEngine, StageDp, StageDpQuery,
};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_planner::cache::context_fingerprint;
use galvatron_planner::{CachedStageDp, DpCache};
use galvatron_strategy::{DecisionTreeBuilder, StrategySet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One randomly drawn tiny workload.
struct Instance {
    estimator: CostEstimator,
    model: ModelSpec,
    set: StrategySet,
    stage_batch: u64,
    micro_batches: usize,
    act_stash_batch: u64,
    usable_budget: u64,
    granularity: u64,
}

fn draw_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // ≤4 devices: group sizes 2 or 4 on a 4-GPU PCIe node.
    let group = [2usize, 4][rng.gen_range(0usize..2)];
    let estimator = CostEstimator::new(rtx_titan_node(4), EstimatorConfig::default());
    // ≤6 layers: embed + 1..=4 encoders + head.
    let heads = [4u64, 8][rng.gen_range(0usize..2)];
    let model = BertConfig {
        layers: rng.gen_range(1..=4),
        hidden: heads * 64,
        heads,
        seq: [64u64, 128][rng.gen_range(0usize..2)],
        vocab: 30522,
    }
    .build(&format!("oracle-{seed}"));

    // A random non-empty subset of the decision-tree candidates keeps the
    // tie-break structure varied across instances.
    let full = DecisionTreeBuilder::new(group).strategies();
    let mut kept: Vec<_> = full
        .iter()
        .filter(|_| rng.gen_range(0..4) > 0)
        .cloned()
        .collect();
    if kept.is_empty() {
        kept = full.strategies().to_vec();
    }
    let set = StrategySet::new(group, kept);

    let stage_batch = (group as u64) << rng.gen_range(0..=2);
    // Keep the micro-batch at least the group size so every candidate's
    // data split divides it.
    let micro_batches = if stage_batch >= 2 * group as u64 && rng.gen_range(0..2) == 1 {
        2
    } else {
        1
    };
    let act_stash_batch = stage_batch;
    // A bimodal draw straddles the feasibility boundary for these shapes:
    // the low mode (16 MiB .. 0.5 GiB) is mostly hopeless, the high mode
    // (up to ~4.3 GiB) mostly comfortable.
    let usable_budget = if rng.gen_range(0u32..2) == 0 {
        rng.gen_range(1u64..=32) * 16 * MIB
    } else {
        rng.gen_range(1u64..=68) * 64 * MIB
    };
    let granularity = [16 * MIB, 64 * MIB][rng.gen_range(0usize..2)];
    Instance {
        estimator,
        model,
        set,
        stage_batch,
        micro_batches,
        act_stash_batch,
        usable_budget,
        granularity,
    }
}

/// Brute force: the true optimum over every per-layer assignment, with the
/// DP's exact quantized accounting (per-layer `div_ceil` memory units, the
/// 2× transient reserve, the `e_max` clamp).
fn brute_force(inst: &Instance) -> Option<f64> {
    let est = &inst.estimator;
    let model = &inst.model;
    let n_layers = model.n_layers();
    let n = inst.set.len();
    let micro = (inst.stage_batch / inst.micro_batches as u64).max(1);

    let mut cost = vec![vec![0.0f64; n]; n_layers];
    let mut units = vec![vec![0u64; n]; n_layers];
    let mut reserve = 0u64;
    for (li, layer) in model.layers.iter().enumerate() {
        for (si, s) in inst.set.iter().enumerate() {
            let c = est.layer_cost(layer, model.dtype, s, micro, 0).unwrap();
            cost[li][si] = c.total_with_micro_batches(est.config(), inst.micro_batches);
            let m = est.layer_memory(layer, model.dtype, s, inst.act_stash_batch);
            units[li][si] = m.persistent().div_ceil(inst.granularity);
            reserve = reserve.max(m.transient);
        }
    }
    let e_max = (inst.usable_budget.saturating_sub(2 * reserve) / inst.granularity).min(1 << 22);
    let mut r = vec![vec![vec![0.0f64; n]; n]; n_layers];
    for (li, r_li) in r.iter_mut().enumerate().skip(1) {
        for (pi, p) in inst.set.iter().enumerate() {
            for (si, s) in inst.set.iter().enumerate() {
                r_li[pi][si] = est
                    .transformation_cost(
                        &model.layers[li - 1],
                        model.dtype,
                        p,
                        s,
                        inst.stage_batch,
                        0,
                    )
                    .unwrap();
            }
        }
    }

    let mut best: Option<f64> = None;
    let mut assignment = vec![0usize; n_layers];
    loop {
        let mut mem = 0u64;
        let mut time = 0.0f64;
        for (li, &si) in assignment.iter().enumerate() {
            mem += units[li][si];
            time += cost[li][si];
            if li > 0 {
                time += r[li][assignment[li - 1]][si];
            }
        }
        if mem <= e_max {
            best = Some(best.map_or(time, |b| b.min(time)));
        }
        // Odometer increment.
        let mut i = 0;
        while i < n_layers {
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
        if i == n_layers {
            break;
        }
    }
    best
}

fn query<'a>(inst: &'a Instance) -> StageDpQuery<'a> {
    StageDpQuery {
        layer_start: 0,
        layer_end: inst.model.n_layers(),
        base_device: 0,
        set: &inst.set,
        stage_batch: inst.stage_batch,
        usable_budget: inst.usable_budget,
        granularity: inst.granularity,
        micro_batches: inst.micro_batches,
        act_stash_batch: inst.act_stash_batch,
    }
}

fn assert_same_result(a: &Option<DpResult>, b: &Option<DpResult>, what: &str, seed: u64) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                a.cost.to_bits(),
                b.cost.to_bits(),
                "seed {seed}: {what} cost diverged ({} vs {})",
                a.cost,
                b.cost
            );
            assert_eq!(
                a.strategies, b.strategies,
                "seed {seed}: {what} strategies diverged"
            );
            assert_eq!(
                a.memory_bytes, b.memory_bytes,
                "seed {seed}: {what} memory diverged"
            );
        }
        _ => panic!(
            "seed {seed}: {what} feasibility diverged ({} vs {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

#[test]
fn every_dp_path_matches_brute_force_on_200_seeded_instances() {
    const INSTANCES: u64 = 220;
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    // One long-lived engine and cache across all instances — exactly the
    // plan-service situation, and the harshest test of context keying:
    // entries interned for one instance must never leak into another.
    let engine = IncrementalEngine::new();
    let cache = DpCache::new();

    for seed in 0..INSTANCES {
        let inst = draw_instance(seed);
        let q = query(&inst);

        let serial = dp_search_with_micro_batches(
            &inst.estimator,
            &inst.model,
            0..inst.model.n_layers(),
            0,
            &inst.set,
            inst.stage_batch,
            inst.usable_budget,
            inst.granularity,
            inst.micro_batches,
            inst.act_stash_batch,
        )
        .unwrap();

        // Incremental path, cold then replayed from the intern table.
        let bound = engine.bind(&inst.estimator, &inst.model);
        let incremental = bound.solve(&inst.estimator, &inst.model, &q).unwrap();
        let replayed = bound.solve(&inst.estimator, &inst.model, &q).unwrap();
        assert_same_result(&serial, &incremental, "incremental", seed);
        assert_same_result(&serial, &replayed, "incremental replay", seed);

        // Memoizing path, cold then warm.
        let ctx = cache.intern(&context_fingerprint(&inst.estimator, &inst.model));
        let cached_dp = CachedStageDp::new(&cache, ctx);
        let cached = cached_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
        let warm = cached_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
        assert_same_result(&serial, &cached, "cached", seed);
        assert_same_result(&serial, &warm, "warm cache", seed);

        // The production stack: whole-query memoization over the
        // incremental engine.
        let composed_dp = CachedStageDp::over(&cache, ctx, &bound);
        let composed = composed_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
        assert_same_result(&serial, &composed, "cache∘incremental", seed);

        // The explicit solver, for completeness of the trait plumbing.
        let direct = DirectStageDp
            .solve(&inst.estimator, &inst.model, &q)
            .unwrap();
        assert_same_result(&serial, &direct, "DirectStageDp", seed);

        // And the oracle itself.
        let oracle = brute_force(&inst);
        match (&serial, oracle) {
            (Some(dp), Some(bf)) => {
                feasible += 1;
                assert!(
                    (dp.cost - bf).abs() <= 1e-9 * bf.max(1.0),
                    "seed {seed}: dp {} vs brute force {bf}",
                    dp.cost
                );
            }
            (None, None) => infeasible += 1,
            (dp, bf) => panic!(
                "seed {seed}: feasibility diverged (dp {}, oracle {})",
                dp.is_some(),
                bf.is_some()
            ),
        }
    }

    // The draw must exercise both sides of the memory boundary, or the
    // suite silently stops testing half the contract.
    assert!(
        feasible >= 40 && infeasible >= 40,
        "skewed instance draw: {feasible} feasible, {infeasible} infeasible"
    );
    let counters = engine.counters();
    assert!(
        counters.intern_hits > 0,
        "replays must hit the table: {counters:?}"
    );
    // Replaying an infeasible query is answered by the ledger alone.
    assert!(
        counters.warm_start_prunes >= infeasible,
        "infeasible replays must short-circuit: {counters:?}"
    );
}
