//! The exhaustive-oracle conformance suite.
//!
//! Eq. 1's solver is the planner's foundation: every plan the optimizer,
//! the parallel planner, the memoization cache and the incremental engine
//! emit is built from its per-stage answers. This suite checks the solver
//! against an oracle that cannot be wrong: brute-force enumeration of every
//! per-layer strategy assignment on tiny instances (≤12 devices, ≤6
//! layers), with the *same* quantized memory accounting the DP uses. Each
//! seeded random workload asserts that
//!
//! * the serial path (`dp_search_with_micro_batches`),
//! * the arena path (`dp_search_arena` — the cold hot path, including its
//!   dominance prefilter and reachable-memory windows),
//! * the parallel-worker path (`ArenaStageDp` through per-thread arenas,
//!   exactly what the work-stealing sweep runs),
//! * the memoizing path (`CachedStageDp`, cold and warm),
//! * the incremental path (`IncrementalEngine`, cold and replayed from the
//!   intern table), and
//! * the composed path (cache over incremental — the planner's production
//!   stack)
//!
//! all agree bit-for-bit with each other and match the brute-force optimum,
//! including on infeasible instances (everyone must say `None`).
//!
//! Four seeded families cover the instance space:
//!
//! * **base** — the original 220 draws on a power-of-two PCIe node;
//! * **npo2** — non-power-of-two device counts (6- and 12-GPU clusters
//!   built from power-of-two islands);
//! * **mixed** — priced heterogeneous A100+RTX island clusters;
//! * **degenerate** — 1-layer stage ranges, 1-GPU groups,
//!   single-strategy sets, and granularities coarser than the budget.

use galvatron_cluster::{
    island_cluster, mixed_a100_rtx_cluster, rtx_titan_node, ClusterTopology, DeviceType, MIB,
};
use galvatron_core::{
    dp_search_arena, dp_search_with_micro_batches, dp_search_with_recompute, ArenaStageDp,
    DirectCosts, DirectStageDp, DpArena, DpResult, IncrementalEngine, RecomputeMode, StageDp,
    StageDpQuery,
};
use galvatron_estimator::{CostEstimator, EstimatorConfig};
use galvatron_model::{BertConfig, ModelSpec};
use galvatron_planner::cache::context_fingerprint;
use galvatron_planner::{CachedStageDp, DpCache};
use galvatron_strategy::{DecisionTreeBuilder, StrategySet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// One randomly drawn tiny workload.
struct Instance {
    estimator: CostEstimator,
    model: ModelSpec,
    layer_range: Range<usize>,
    set: StrategySet,
    stage_batch: u64,
    micro_batches: usize,
    act_stash_batch: u64,
    usable_budget: u64,
    granularity: u64,
    recompute: RecomputeMode,
}

fn tiny_model(rng: &mut StdRng, seed: u64) -> ModelSpec {
    let heads = [4u64, 8][rng.gen_range(0usize..2)];
    BertConfig {
        layers: rng.gen_range(1..=4),
        hidden: heads * 64,
        heads,
        seq: [64u64, 128][rng.gen_range(0usize..2)],
        vocab: 30522,
    }
    .build(&format!("oracle-{seed}"))
}

/// A random non-empty subset of the decision-tree candidates keeps the
/// tie-break structure varied across instances.
fn random_subset(rng: &mut StdRng, group: usize) -> StrategySet {
    let full = DecisionTreeBuilder::new(group).strategies();
    let mut kept: Vec<_> = full
        .iter()
        .filter(|_| rng.gen_range(0..4) > 0)
        .cloned()
        .collect();
    if kept.is_empty() {
        kept = full.strategies().to_vec();
    }
    StrategySet::new(group, kept)
}

/// Family **base**: the original draw on a 4-GPU power-of-two PCIe node.
fn draw_base(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // ≤4 devices: group sizes 2 or 4 on a 4-GPU PCIe node.
    let group = [2usize, 4][rng.gen_range(0usize..2)];
    let estimator = CostEstimator::new(rtx_titan_node(4), EstimatorConfig::default());
    let model = tiny_model(&mut rng, seed);
    let set = random_subset(&mut rng, group);

    let stage_batch = (group as u64) << rng.gen_range(0..=2);
    // Keep the micro-batch at least the group size so every candidate's
    // data split divides it.
    let micro_batches = if stage_batch >= 2 * group as u64 && rng.gen_range(0..2) == 1 {
        2
    } else {
        1
    };
    let act_stash_batch = stage_batch;
    // A bimodal draw straddles the feasibility boundary for these shapes:
    // the low mode (16 MiB .. 0.5 GiB) is mostly hopeless, the high mode
    // (up to ~4.3 GiB) mostly comfortable.
    let usable_budget = if rng.gen_range(0u32..2) == 0 {
        rng.gen_range(1u64..=32) * 16 * MIB
    } else {
        rng.gen_range(1u64..=68) * 64 * MIB
    };
    let granularity = [16 * MIB, 64 * MIB][rng.gen_range(0usize..2)];
    let n_layers = model.n_layers();
    Instance {
        estimator,
        model,
        layer_range: 0..n_layers,
        set,
        stage_batch,
        micro_batches,
        act_stash_batch,
        usable_budget,
        granularity,
        recompute: RecomputeMode::Off,
    }
}

/// Family **npo2**: clusters whose device count is *not* a power of two
/// (built from power-of-two islands, per Takeaway #2 the groups themselves
/// stay powers of two).
fn draw_npo2(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (topology, group): (ClusterTopology, usize) = match rng.gen_range(0u32..3) {
        // 6 GPUs: 3 PCIe islands of 2.
        0 => (island_cluster(DeviceType::RtxTitan, 3, 2), 2),
        // 12 GPUs: 3 islands of 4.
        1 => (
            island_cluster(DeviceType::RtxTitan, 3, 4),
            [2, 4][rng.gen_range(0usize..2)],
        ),
        // 12 GPUs: 6 islands of 2, groups span island boundaries.
        _ => (
            island_cluster(DeviceType::A100, 6, 2),
            [2, 4][rng.gen_range(0usize..2)],
        ),
    };
    let estimator = CostEstimator::new(topology, EstimatorConfig::default());
    let model = tiny_model(&mut rng, seed);
    let set = random_subset(&mut rng, group);
    let stage_batch = (group as u64) << rng.gen_range(0u32..=2);
    let micro_batches = if stage_batch >= 2 * group as u64 && rng.gen_range(0..2) == 1 {
        2
    } else {
        1
    };
    let usable_budget = if rng.gen_range(0u32..2) == 0 {
        rng.gen_range(1u64..=32) * 16 * MIB
    } else {
        rng.gen_range(1u64..=68) * 64 * MIB
    };
    let granularity = [16 * MIB, 64 * MIB][rng.gen_range(0usize..2)];
    let n_layers = model.n_layers();
    Instance {
        estimator,
        model,
        layer_range: 0..n_layers,
        set,
        stage_batch,
        micro_batches,
        act_stash_batch: stage_batch,
        usable_budget,
        granularity,
        recompute: RecomputeMode::Off,
    }
}

/// Family **mixed**: priced heterogeneous A100+RTX island clusters (the
/// galvatron-hetero topologies), including non-power-of-two totals.
fn draw_mixed(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (topology, group): (ClusterTopology, usize) = match rng.gen_range(0u32..3) {
        // 4 GPUs: one A100 pair + one RTX pair.
        0 => (mixed_a100_rtx_cluster(1, 1, 2), 2),
        // 6 GPUs: one A100 island + two RTX islands.
        1 => (mixed_a100_rtx_cluster(1, 2, 2), 2),
        // 12 GPUs: two A100 islands + one RTX island of 4.
        _ => (
            mixed_a100_rtx_cluster(2, 1, 4),
            [2, 4][rng.gen_range(0usize..2)],
        ),
    };
    let estimator = CostEstimator::new(topology, EstimatorConfig::default());
    let model = tiny_model(&mut rng, seed);
    let set = random_subset(&mut rng, group);
    let stage_batch = (group as u64) << rng.gen_range(0..=2);
    let micro_batches = if stage_batch >= 2 * group as u64 && rng.gen_range(0..2) == 1 {
        2
    } else {
        1
    };
    let usable_budget = if rng.gen_range(0u32..2) == 0 {
        rng.gen_range(1u64..=32) * 16 * MIB
    } else {
        rng.gen_range(1u64..=68) * 64 * MIB
    };
    let granularity = [16 * MIB, 64 * MIB][rng.gen_range(0usize..2)];
    // Mixed clusters price links by position: start some stages off the
    // first island to exercise base-device-dependent kernels.
    let n_layers = model.n_layers();
    Instance {
        estimator,
        model,
        layer_range: 0..n_layers,
        set,
        stage_batch,
        micro_batches,
        act_stash_batch: stage_batch,
        usable_budget,
        granularity,
        recompute: RecomputeMode::Off,
    }
}

/// Family **degenerate**: the edges — 1-layer stage ranges, the 1-GPU
/// group (a single serial strategy), single-strategy sets, and
/// granularities coarser than the whole budget.
fn draw_degenerate(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let estimator = CostEstimator::new(rtx_titan_node(2), EstimatorConfig::default());
    let model = tiny_model(&mut rng, seed);
    let n_layers = model.n_layers();
    let variant = rng.gen_range(0u32..4);
    // 1-GPU group in half the variants; a single kept strategy in another.
    let (group, set) = match variant {
        0 | 1 => (1usize, DecisionTreeBuilder::new(1).strategies()),
        2 => {
            let full = DecisionTreeBuilder::new(2).strategies();
            let pick = rng.gen_range(0..full.len());
            (
                2usize,
                StrategySet::new(2, vec![full.strategies()[pick].clone()]),
            )
        }
        _ => (2usize, random_subset(&mut rng, 2)),
    };
    // 1-layer ranges in half the variants (anywhere in the model).
    let layer_range = if variant % 2 == 0 {
        let start = rng.gen_range(0..n_layers);
        start..start + 1
    } else {
        0..n_layers
    };
    let stage_batch = (group as u64) << rng.gen_range(0..=1);
    let usable_budget = rng.gen_range(1u64..=40) * 32 * MIB;
    // Sometimes coarser than the budget itself: e_max collapses to 0.
    let granularity = [16 * MIB, 2048 * MIB][rng.gen_range(0usize..2)];
    Instance {
        estimator,
        model,
        layer_range,
        set,
        stage_batch,
        micro_batches: 1,
        act_stash_batch: stage_batch,
        usable_budget,
        granularity,
        recompute: RecomputeMode::Off,
    }
}

/// Family **recompute**: the BMW fifth dimension — base-style draws with
/// the recompute planes forced `On` or left to the DP (`Auto`), on
/// deliberately tight budgets so checkpointing is frequently the only
/// feasible (or the strictly cheaper) choice. Brute force enumerates the
/// full `(strategy × plane)^layers` decision space.
fn draw_recompute(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let group = [2usize, 4][rng.gen_range(0usize..2)];
    let estimator = CostEstimator::new(rtx_titan_node(4), EstimatorConfig::default());
    let model = tiny_model(&mut rng, seed);
    let set = random_subset(&mut rng, group);
    let stage_batch = (group as u64) << rng.gen_range(0..=2);
    let micro_batches = if stage_batch >= 2 * group as u64 && rng.gen_range(0..2) == 1 {
        2
    } else {
        1
    };
    // Skew low: the interesting instances sit on the feasibility boundary
    // where the stash plane alone does not fit.
    let usable_budget = if rng.gen_range(0u32..3) == 0 {
        rng.gen_range(1u64..=68) * 64 * MIB
    } else {
        rng.gen_range(1u64..=32) * 16 * MIB
    };
    let granularity = [16 * MIB, 64 * MIB][rng.gen_range(0usize..2)];
    let recompute = [RecomputeMode::On, RecomputeMode::Auto][rng.gen_range(0usize..2)];
    let n_layers = model.n_layers();
    Instance {
        estimator,
        model,
        layer_range: 0..n_layers,
        set,
        stage_batch,
        micro_batches,
        act_stash_batch: stage_batch,
        usable_budget,
        granularity,
        recompute,
    }
}

/// Brute force: the true optimum over every per-layer assignment, with the
/// DP's exact quantized accounting (per-layer `div_ceil` memory units, the
/// 2× transient reserve, the `e_max` clamp).
fn brute_force(inst: &Instance) -> Option<f64> {
    let est = &inst.estimator;
    let model = &inst.model;
    let layers: Vec<usize> = inst.layer_range.clone().collect();
    let n_layers = layers.len();
    let n_strats = inst.set.len();
    let planes = inst.recompute.planes();
    // A decision is a `(strategy, recompute-plane)` pair, plane-major like
    // the solver's own indexing; with recompute off this is the historical
    // strategy enumeration.
    let n = n_strats * planes.len();
    let micro = (inst.stage_batch / inst.micro_batches as u64).max(1);

    let mut cost = vec![vec![0.0f64; n]; n_layers];
    let mut units = vec![vec![0u64; n]; n_layers];
    let mut reserve = 0u64;
    for (li, &l) in layers.iter().enumerate() {
        let layer = &model.layers[l];
        for (plane, &rc) in planes.iter().enumerate() {
            for (si, s) in inst.set.iter().enumerate() {
                let di = plane * n_strats + si;
                let c = est
                    .layer_cost_with_recompute(layer, model.dtype, s, micro, 0, rc)
                    .unwrap();
                cost[li][di] = c.total_with_micro_batches(est.config(), inst.micro_batches);
                let m = est.layer_memory_with_recompute(
                    layer,
                    model.dtype,
                    s,
                    inst.act_stash_batch,
                    rc,
                );
                units[li][di] = m.persistent().div_ceil(inst.granularity);
                reserve = reserve.max(m.transient);
            }
        }
    }
    let e_max = (inst.usable_budget.saturating_sub(2 * reserve) / inst.granularity).min(1 << 22);
    // R depends only on the strategy parts of the adjacent decisions.
    let mut r = vec![vec![vec![0.0f64; n_strats]; n_strats]; n_layers];
    for (li, r_li) in r.iter_mut().enumerate().skip(1) {
        for (pi, p) in inst.set.iter().enumerate() {
            for (si, s) in inst.set.iter().enumerate() {
                r_li[pi][si] = est
                    .transformation_cost(
                        &model.layers[layers[li - 1]],
                        model.dtype,
                        p,
                        s,
                        inst.stage_batch,
                        0,
                    )
                    .unwrap();
            }
        }
    }

    let mut best: Option<f64> = None;
    let mut assignment = vec![0usize; n_layers];
    loop {
        let mut mem = 0u64;
        let mut time = 0.0f64;
        for (li, &di) in assignment.iter().enumerate() {
            mem += units[li][di];
            time += cost[li][di];
            if li > 0 {
                time += r[li][assignment[li - 1] % n_strats][di % n_strats];
            }
        }
        if mem <= e_max {
            best = Some(best.map_or(time, |b| b.min(time)));
        }
        // Odometer increment.
        let mut i = 0;
        while i < n_layers {
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
        if i == n_layers {
            break;
        }
    }
    best
}

fn query<'a>(inst: &'a Instance) -> StageDpQuery<'a> {
    StageDpQuery {
        layer_start: inst.layer_range.start,
        layer_end: inst.layer_range.end,
        base_device: 0,
        set: &inst.set,
        stage_batch: inst.stage_batch,
        usable_budget: inst.usable_budget,
        granularity: inst.granularity,
        micro_batches: inst.micro_batches,
        act_stash_batch: inst.act_stash_batch,
        recompute: inst.recompute,
    }
}

fn assert_same_result(a: &Option<DpResult>, b: &Option<DpResult>, what: &str, seed: u64) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                a.cost.to_bits(),
                b.cost.to_bits(),
                "seed {seed}: {what} cost diverged ({} vs {})",
                a.cost,
                b.cost
            );
            assert_eq!(
                a.strategies, b.strategies,
                "seed {seed}: {what} strategies diverged"
            );
            assert_eq!(
                a.memory_bytes, b.memory_bytes,
                "seed {seed}: {what} memory diverged"
            );
            assert_eq!(
                a.recompute, b.recompute,
                "seed {seed}: {what} recompute planes diverged"
            );
        }
        _ => panic!(
            "seed {seed}: {what} feasibility diverged ({} vs {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

/// Every `(family_offset, count)` block of seeds in the suite.
const FAMILIES: [(&str, u64, u64); 5] = [
    ("base", 0, 220),
    ("npo2", 1_000, 90),
    ("mixed", 2_000, 60),
    ("degenerate", 3_000, 40),
    ("recompute", 4_000, 80),
];

fn draw(seed: u64) -> Instance {
    match seed {
        0..=999 => draw_base(seed),
        1_000..=1_999 => draw_npo2(seed),
        2_000..=2_999 => draw_mixed(seed),
        3_000..=3_999 => draw_degenerate(seed),
        _ => draw_recompute(seed),
    }
}

#[test]
fn every_dp_path_matches_brute_force_on_410_seeded_instances() {
    let mut total = 0usize;
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    // One long-lived engine, cache and arena across all instances —
    // exactly the plan-service situation, and the harshest test of
    // context keying and scratch reuse: entries interned (or arena rows
    // written) for one instance must never leak into another.
    let engine = IncrementalEngine::new();
    let cache = DpCache::new();
    let mut arena = DpArena::new();
    let arena_dp = ArenaStageDp::new();

    for &(_family, offset, count) in &FAMILIES {
        for seed in offset..offset + count {
            total += 1;
            let inst = draw(seed);
            let q = query(&inst);

            let serial = dp_search_with_recompute(
                &inst.estimator,
                &inst.model,
                inst.layer_range.clone(),
                0,
                &inst.set,
                inst.stage_batch,
                inst.usable_budget,
                inst.granularity,
                inst.micro_batches,
                inst.act_stash_batch,
                inst.recompute,
                &DirectCosts,
            )
            .unwrap();

            // Arena path: the cold hot path with dominance prefilter and
            // reachable-memory windows, on a shared (reused) arena.
            let arena_result = dp_search_arena(
                &inst.estimator,
                &inst.model,
                inst.layer_range.clone(),
                0,
                &inst.set,
                inst.stage_batch,
                inst.usable_budget,
                inst.granularity,
                inst.micro_batches,
                inst.act_stash_batch,
                inst.recompute,
                &DirectCosts,
                &mut arena,
            )
            .unwrap();
            assert_same_result(&serial, &arena_result, "arena", seed);

            // Parallel-worker path: `ArenaStageDp` through the
            // thread-local arena, the exact solver the work-stealing
            // sweep's workers run.
            let worker = arena_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
            assert_same_result(&serial, &worker, "parallel worker", seed);

            // Incremental path, cold then replayed from the intern table.
            let bound = engine.bind(&inst.estimator, &inst.model);
            let incremental = bound.solve(&inst.estimator, &inst.model, &q).unwrap();
            let replayed = bound.solve(&inst.estimator, &inst.model, &q).unwrap();
            assert_same_result(&serial, &incremental, "incremental", seed);
            assert_same_result(&serial, &replayed, "incremental replay", seed);

            // Memoizing path, cold then warm.
            let ctx = cache.intern(&context_fingerprint(&inst.estimator, &inst.model));
            let cached_dp = CachedStageDp::new(&cache, ctx);
            let cached = cached_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
            let warm = cached_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
            assert_same_result(&serial, &cached, "cached", seed);
            assert_same_result(&serial, &warm, "warm cache", seed);

            // The production stack: whole-query memoization over the
            // incremental engine.
            let composed_dp = CachedStageDp::over(&cache, ctx, &bound);
            let composed = composed_dp.solve(&inst.estimator, &inst.model, &q).unwrap();
            assert_same_result(&serial, &composed, "cache∘incremental", seed);

            // The explicit solver, for completeness of the trait plumbing.
            let direct = DirectStageDp
                .solve(&inst.estimator, &inst.model, &q)
                .unwrap();
            assert_same_result(&serial, &direct, "DirectStageDp", seed);

            // And the oracle itself.
            let oracle = brute_force(&inst);
            match (&serial, oracle) {
                (Some(dp), Some(bf)) => {
                    feasible += 1;
                    assert!(
                        (dp.cost - bf).abs() <= 1e-9 * bf.max(1.0),
                        "seed {seed}: dp {} vs brute force {bf}",
                        dp.cost
                    );
                }
                (None, None) => infeasible += 1,
                (dp, bf) => panic!(
                    "seed {seed}: feasibility diverged (dp {}, oracle {})",
                    dp.is_some(),
                    bf.is_some()
                ),
            }
        }
    }

    assert!(total >= 400, "oracle wall shrank: {total} instances");
    // The draw must exercise both sides of the memory boundary, or the
    // suite silently stops testing half the contract.
    assert!(
        feasible >= 80 && infeasible >= 80,
        "skewed instance draw: {feasible} feasible, {infeasible} infeasible"
    );
    assert!(arena.solves() > 0, "arena path never exercised");
    assert_eq!(
        arena_dp.solves(),
        total,
        "parallel worker path must run every instance"
    );
    let counters = engine.counters();
    assert!(
        counters.intern_hits > 0,
        "replays must hit the table: {counters:?}"
    );
    assert!(
        counters.arena_solves > 0,
        "the incremental engine must route solves through the arena: {counters:?}"
    );
    // Replaying an infeasible query is answered by the ledger alone.
    assert!(
        counters.warm_start_prunes >= infeasible,
        "infeasible replays must short-circuit: {counters:?}"
    );
}

/// Thread-local arenas must not interact: the same query solved
/// concurrently from many threads, against the serial answer.
#[test]
fn parallel_thread_arenas_agree_with_serial() {
    let insts: Vec<Instance> = (0..16).map(|i| draw(i * 7)).collect();
    let serials: Vec<Option<DpResult>> = insts
        .iter()
        .map(|inst| {
            dp_search_with_micro_batches(
                &inst.estimator,
                &inst.model,
                inst.layer_range.clone(),
                0,
                &inst.set,
                inst.stage_batch,
                inst.usable_budget,
                inst.granularity,
                inst.micro_batches,
                inst.act_stash_batch,
            )
            .unwrap()
        })
        .collect();
    let dp = ArenaStageDp::new();
    std::thread::scope(|scope| {
        for chunk in insts.chunks(4).zip(serials.chunks(4)) {
            let (insts, serials) = chunk;
            let dp = &dp;
            scope.spawn(move || {
                for (i, inst) in insts.iter().enumerate() {
                    let got = dp
                        .solve(&inst.estimator, &inst.model, &query(inst))
                        .unwrap();
                    assert_same_result(&serials[i], &got, "threaded arena", i as u64);
                }
            });
        }
    });
    assert_eq!(dp.solves(), 16);
}
