//! End-to-end integration: plan → validate → estimate → simulate, across
//! models and testbeds.

use galvatron::baselines::{BaselinePlanner, BaselineStrategy};
use galvatron::prelude::*;

fn quick_config() -> OptimizerConfig {
    OptimizerConfig {
        max_batch: 64,
        ..OptimizerConfig::default()
    }
}

#[test]
fn plans_execute_for_every_paper_model_on_8_gpus() {
    let cluster = TestbedPreset::RtxTitan8.topology();
    let optimizer = GalvatronOptimizer::new(quick_config());
    for m in PaperModel::TABLE1 {
        let model = m.spec();
        let budget = 16 * GIB;
        let outcome = optimizer
            .optimize(&model, &cluster, budget)
            .expect("lookups succeed")
            .unwrap_or_else(|| panic!("{} fits 16 GiB", m.name()));
        outcome
            .plan
            .validate(model.n_layers(), cluster.n_devices())
            .expect("valid plan");
        let sim = Simulator::new(
            cluster.clone(),
            SimulatorConfig::default().with_budget(budget),
        );
        let report = sim.execute(&model, &outcome.plan).expect("plan executes");
        assert!(!report.oom, "{}: planner-approved plan OOMed", m.name());
        assert!(report.throughput > 0.0);
        // The estimate should land in the right ballpark of the measured
        // value (Figure 3 shows <5% on average; allow generous slack for
        // single plans).
        let ratio = outcome.throughput_samples_per_sec / report.throughput;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "{}: est {:.2} vs sim {:.2}",
            m.name(),
            outcome.throughput_samples_per_sec,
            report.throughput
        );
    }
}

#[test]
fn planner_feasibility_implies_simulator_feasibility() {
    // The memory accounting on both sides must agree: whenever the planner
    // emits a plan under budget, the simulator must not OOM.
    let cluster = TestbedPreset::RtxTitan8.topology();
    let planner = BaselinePlanner::new(cluster.clone(), quick_config());
    for m in [PaperModel::BertHuge32, PaperModel::SwinHuge48] {
        let model = m.spec();
        for budget_gb in [8u64, 12, 16] {
            let budget = budget_gb * GIB;
            for strategy in BaselineStrategy::ALL {
                if let Some(outcome) = planner.plan(strategy, &model, budget).unwrap() {
                    let sim = Simulator::new(
                        cluster.clone(),
                        SimulatorConfig::default().with_budget(budget),
                    );
                    let report = sim.execute(&model, &outcome.plan).expect("executes");
                    assert!(
                        !report.oom,
                        "{} {} @{budget_gb}G: planner said fit, sim peaked at {:.2} GiB",
                        m.name(),
                        strategy.label(),
                        report.peak_memory() as f64 / GIB as f64
                    );
                }
            }
        }
    }
}

#[test]
fn galvatron_dominates_pure_strategies_in_simulation() {
    // The headline Table-1 property, measured on the simulator.
    let cluster = TestbedPreset::RtxTitan8.topology();
    let planner = BaselinePlanner::new(cluster.clone(), quick_config());
    let model = PaperModel::VitHuge32.spec();
    let budget = 12 * GIB;
    let sim = Simulator::new(
        cluster.clone(),
        SimulatorConfig::default().with_budget(budget),
    );

    let full = planner
        .plan(BaselineStrategy::GalvatronFull, &model, budget)
        .unwrap()
        .expect("feasible");
    let full_measured = sim.execute(&model, &full.plan).unwrap().throughput;

    for strategy in [
        BaselineStrategy::PyTorchDdp,
        BaselineStrategy::MegatronTp,
        BaselineStrategy::GPipePp,
        BaselineStrategy::FsdpSdp,
    ] {
        if let Some(outcome) = planner.plan(strategy, &model, budget).unwrap() {
            let measured = sim.execute(&model, &outcome.plan).unwrap().throughput;
            assert!(
                full_measured >= measured * 0.95,
                "{}: {measured:.2} vs Galvatron {full_measured:.2}",
                strategy.label()
            );
        }
    }
}

#[test]
fn sixteen_gpu_plans_span_both_nodes() {
    let cluster = TestbedPreset::RtxTitan16.topology();
    let model = PaperModel::VitHuge32.spec();
    let outcome = GalvatronOptimizer::new(quick_config())
        .optimize(&model, &cluster, 8 * GIB)
        .unwrap()
        .expect("feasible");
    outcome.plan.validate(model.n_layers(), 16).unwrap();
    let devices: usize = outcome.plan.stages.iter().map(|s| s.device_count).sum();
    assert_eq!(devices, 16);
    let sim = Simulator::new(cluster, SimulatorConfig::default().with_budget(8 * GIB));
    let report = sim.execute(&model, &outcome.plan).unwrap();
    assert!(!report.oom);
}

#[test]
fn tighter_budget_never_beats_looser_budget_in_simulation() {
    let cluster = TestbedPreset::RtxTitan8.topology();
    let optimizer = GalvatronOptimizer::new(quick_config());
    let model = PaperModel::SwinHuge32.spec();
    let mut prev = 0.0;
    for budget_gb in [8u64, 12, 16, 20] {
        let budget = budget_gb * GIB;
        let outcome = optimizer
            .optimize(&model, &cluster, budget)
            .unwrap()
            .expect("feasible");
        let sim = Simulator::new(
            cluster.clone(),
            SimulatorConfig::default().with_budget(budget),
        );
        let measured = sim.execute(&model, &outcome.plan).unwrap().throughput;
        // Allow a sliver of slack: the planner optimizes the estimate, not
        // the simulator.
        assert!(
            measured >= prev * 0.93,
            "throughput regressed at {budget_gb}G: {measured:.2} < {prev:.2}"
        );
        prev = prev.max(measured);
    }
}
