//! The profiling round-trip (§3.4 "we take advantages from both sides
//! [profiling and simulating]"): treat the simulator as the hardware,
//! profile it with micro-workloads, fit the cost model's constants, and
//! recover the values the simulator was built with.

use galvatron::estimator::{fit_alpha, fit_link, fit_rate};
use galvatron::prelude::*;
use galvatron_strategy::{IntraStageStrategy, Paradigm};

#[test]
fn sustained_flops_recovered_from_compute_profiles() {
    // Pure-TP plans over a single batch expose compute cleanly through the
    // report's `compute_work` (total seconds of kernels at full rate).
    let topo = TestbedPreset::RtxTitan8.topology();
    let sim = Simulator::new(topo.clone(), SimulatorConfig::deterministic());
    let model = PaperModel::VitHuge32.spec();
    let strategy = IntraStageStrategy::pure(Paradigm::Data, 8).unwrap();

    let mut samples = Vec::new();
    for batch in [8usize, 16, 32, 64] {
        let plan = ParallelPlan::uniform("probe", model.n_layers(), 8, strategy.clone(), batch);
        let report = sim.execute(&model, &plan).unwrap();
        // Per device: batch/8 samples, forward + backward = 3× forward
        // FLOPs; the report aggregates all stages (= 1 device group here,
        // work counted once at stage granularity).
        let flops = 3.0 * model.forward_flops_per_sample() * (batch as f64 / 8.0);
        samples.push((flops, report.compute_work));
    }
    let fitted = fit_rate(&samples).expect("identifiable");
    let truth = topo.gpu().sustained_flops;
    let err = (fitted / truth - 1.0).abs();
    assert!(
        err < 0.05,
        "fitted {fitted:.3e} vs truth {truth:.3e} ({err:.3})"
    );
}

#[test]
fn link_bandwidth_recovered_from_comm_profiles() {
    // Pure-DP gradient all-reduces: wire time = 2(n−1)/n · P / B. Feed the
    // fitter the on-wire byte counts and the report's comm_work.
    let topo = TestbedPreset::RtxTitan8.topology();
    let sim = Simulator::new(topo.clone(), SimulatorConfig::deterministic());
    let strategy = IntraStageStrategy::pure(Paradigm::Data, 8).unwrap();

    let mut samples = Vec::new();
    for layers in [4usize, 8, 16, 24] {
        let model = galvatron::model::BertConfig {
            layers,
            hidden: 1280,
            heads: 20,
            seq: 512,
            vocab: 30522,
        }
        .build("probe");
        let plan = ParallelPlan::uniform("probe", model.n_layers(), 8, strategy.clone(), 8);
        let report = sim.execute(&model, &plan).unwrap();
        let wire_bytes = 2.0 * 7.0 / 8.0 * model.total_param_bytes() as f64;
        // comm_work includes the compute share of comm? No: comm task work
        // only. Subtract nothing; fit bandwidth + per-op latency jointly.
        samples.push((wire_bytes, report.comm_work));
    }
    let fitted = fit_link(&samples).expect("identifiable");
    let truth = topo.link_between(0, 7).unwrap().bandwidth;
    let err = (fitted.bandwidth / truth - 1.0).abs();
    assert!(
        err < 0.05,
        "fitted {:.3e} vs truth {truth:.3e} ({err:.3})",
        fitted.bandwidth
    );
}

#[test]
fn overlap_alpha_recovered_from_iteration_times() {
    // DP training overlaps the gradient all-reduce with backward compute;
    // with forward/backward/comm separable from the report, the iteration
    // time identifies α.
    let topo = TestbedPreset::RtxTitan8.topology();
    let sim = Simulator::new(topo.clone(), SimulatorConfig::deterministic());
    let strategy = IntraStageStrategy::pure(Paradigm::Data, 8).unwrap();

    let mut samples = Vec::new();
    for (model, batch) in [
        (PaperModel::BertHuge32.spec(), 8usize),
        (PaperModel::VitHuge32.spec(), 64),
        (PaperModel::SwinHuge32.spec(), 48),
    ] {
        let plan = ParallelPlan::uniform("probe", model.n_layers(), 8, strategy.clone(), batch);
        let report = sim.execute(&model, &plan).unwrap();
        let forward = report.compute_work / 3.0;
        let backward = report.compute_work - forward;
        let comm = report.comm_work;
        // iteration = forward + overlapped(backward, comm)
        let wall = report.iteration_time - forward;
        samples.push((backward, comm, wall));
    }
    let fitted = fit_alpha(&samples).expect("identifiable");
    let truth = SimulatorConfig::default().overlap_slowdown;
    assert!(
        (fitted - truth).abs() < 0.08,
        "fitted α {fitted:.3} vs truth {truth:.3}"
    );
}
