//! Activation recomputation — the memory optimization the paper disables
//! (§5.1: "we disable some memory optimizations (e.g., recompute) and leave
//! them as our future work") and this repository implements end-to-end.

use galvatron::prelude::*;
use galvatron_strategy::Paradigm;

fn dp8_plan(model: &galvatron::model::ModelSpec, batch: usize) -> ParallelPlan {
    ParallelPlan::uniform(
        "dp8",
        model.n_layers(),
        8,
        galvatron::strategy::IntraStageStrategy::pure(Paradigm::Data, 8).unwrap(),
        batch,
    )
}

#[test]
fn recompute_trades_memory_for_compute_in_the_simulator() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    // ZeRO-3 shards the model state, so activations dominate the footprint
    // and the recomputation saving is visible end to end.
    let plan = ParallelPlan::uniform(
        "sdp8",
        model.n_layers(),
        8,
        galvatron::strategy::IntraStageStrategy::pure(Paradigm::ShardedData, 8).unwrap(),
        64,
    );

    let base = Simulator::new(topo.clone(), SimulatorConfig::deterministic())
        .execute(&model, &plan)
        .unwrap();
    let cfg = SimulatorConfig {
        recompute_activations: true,
        ..SimulatorConfig::deterministic()
    };
    let recompute = Simulator::new(topo, cfg).execute(&model, &plan).unwrap();

    assert!(
        recompute.peak_memory() < base.peak_memory() / 2,
        "recompute {:.2} GiB vs stash {:.2} GiB",
        recompute.peak_memory() as f64 / GIB as f64,
        base.peak_memory() as f64 / GIB as f64
    );
    assert!(recompute.iteration_time > base.iteration_time);
    // Backward grows by exactly one forward: total compute 3/2×... the
    // forward half is unchanged, so the overall compute work ratio is 4/3.
    let ratio = recompute.compute_work / base.compute_work;
    assert!((ratio - 4.0 / 3.0).abs() < 0.02, "compute ratio {ratio:.3}");
}

#[test]
fn estimator_and_simulator_agree_on_recompute() {
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    let plan = dp8_plan(&model, 32);

    let est_cfg = EstimatorConfig {
        recompute_activations: true,
        ..EstimatorConfig::default()
    };
    let est = CostEstimator::new(topo.clone(), est_cfg)
        .plan_cost(&model, &plan)
        .unwrap();

    let sim_cfg = SimulatorConfig {
        recompute_activations: true,
        ..SimulatorConfig::default()
    };
    let sim = Simulator::new(topo, sim_cfg)
        .execute(&model, &plan)
        .unwrap();

    let time_err = (est.iteration_time / sim.iteration_time - 1.0).abs();
    assert!(time_err < 0.10, "time err {time_err:.3}");
    let mem_err = (est.peak_memory() as f64 / sim.peak_memory() as f64 - 1.0).abs();
    assert!(mem_err < 0.05, "memory err {mem_err:.3}");
}

#[test]
fn per_layer_plan_decisions_match_the_global_override_bit_for_bit() {
    // Satellite regression for the deprecated `SimulatorConfig`
    // `recompute_activations` bool: marking every layer in the plan is the
    // same execution as flipping the global override, to the last bit.
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::VitHuge32.spec();
    let plan = ParallelPlan::uniform(
        "sdp8",
        model.n_layers(),
        8,
        galvatron::strategy::IntraStageStrategy::pure(Paradigm::ShardedData, 8).unwrap(),
        64,
    );

    let mut per_layer = plan.clone();
    for stage in &mut per_layer.stages {
        stage.layer_recompute = vec![true; stage.n_layers()];
    }
    let from_plan = Simulator::new(topo.clone(), SimulatorConfig::deterministic())
        .execute(&model, &per_layer)
        .unwrap();

    let cfg = SimulatorConfig {
        recompute_activations: true,
        ..SimulatorConfig::deterministic()
    };
    let from_global = Simulator::new(topo, cfg).execute(&model, &plan).unwrap();

    assert_eq!(
        from_plan.iteration_time.to_bits(),
        from_global.iteration_time.to_bits()
    );
    assert_eq!(from_plan.peak_memory(), from_global.peak_memory());
    assert_eq!(
        from_plan.compute_work.to_bits(),
        from_global.compute_work.to_bits()
    );
}

#[test]
fn recompute_unlocks_infeasible_budgets() {
    // BERT-Huge-48 cannot train under 6 GiB/device without recomputation;
    // with it, the planner finds a plan and the simulator confirms it fits.
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge48.spec();
    let budget = 6 * GIB;

    let plain = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 32,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap();
    assert!(
        plain.is_none(),
        "6 GiB should be infeasible without recompute"
    );

    let est_cfg = EstimatorConfig {
        recompute_activations: true,
        include_boundary_comm: true,
        ..EstimatorConfig::default()
    };
    let with = GalvatronOptimizer::new(OptimizerConfig {
        estimator: est_cfg,
        max_batch: 32,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap()
    .expect("recompute makes 6 GiB feasible");

    let sim_cfg = SimulatorConfig {
        recompute_activations: true,
        ..SimulatorConfig::default().with_budget(budget)
    };
    let report = Simulator::new(topo, sim_cfg)
        .execute(&model, &with.plan)
        .unwrap();
    assert!(!report.oom);
    assert!(report.throughput > 0.0);
}

#[test]
fn per_layer_dp_dimension_unlocks_infeasible_budgets() {
    // Same 6 GiB cliff as above, but solved through the fifth DP dimension:
    // the planner itself decides which layers recompute, no estimator-wide
    // override involved, and the plan carries the decisions.
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge48.spec();
    let budget = 6 * GIB;

    let outcome = GalvatronOptimizer::new(OptimizerConfig {
        recompute: RecomputeMode::Auto,
        max_batch: 32,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap()
    .expect("the recompute dimension makes 6 GiB feasible");

    let marked: usize = outcome
        .plan
        .stages
        .iter()
        .map(|s| s.layer_recompute.iter().filter(|&&r| r).count())
        .sum();
    assert!(marked > 0, "the winning plan should recompute some layers");

    // The simulator honours the per-layer decisions without any global flag.
    let report = Simulator::new(topo, SimulatorConfig::default().with_budget(budget))
        .execute(&model, &outcome.plan)
        .unwrap();
    assert!(!report.oom);
    assert!(report.throughput > 0.0);
}

#[test]
fn auto_recompute_never_loses_to_stash_only() {
    // Auto searches both planes, so at a budget where stash-only is already
    // feasible the winner can only match or beat it.
    let topo = TestbedPreset::RtxTitan8.topology();
    let model = PaperModel::BertHuge32.spec();
    let budget = 10 * GIB;

    let stash = GalvatronOptimizer::new(OptimizerConfig {
        max_batch: 16,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap()
    .expect("stash-only baseline feasible");
    let auto = GalvatronOptimizer::new(OptimizerConfig {
        recompute: RecomputeMode::Auto,
        max_batch: 16,
        ..OptimizerConfig::default()
    })
    .optimize(&model, &topo, budget)
    .unwrap()
    .expect("auto at least matches stash-only");

    assert!(
        auto.throughput_samples_per_sec >= stash.throughput_samples_per_sec * (1.0 - 1e-9),
        "auto {:.3} vs stash {:.3} samples/s",
        auto.throughput_samples_per_sec,
        stash.throughput_samples_per_sec
    );
}
