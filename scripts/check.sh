#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> no eprintln! in library code (binaries under crates/*/src/bin are exempt)"
if grep -rn 'eprintln!' crates/*/src --include='*.rs' | grep -v '/src/bin/'; then
    echo "library crates must log through the obs span sinks, not eprintln!" >&2
    exit 1
fi

echo "==> cargo build --all-features"
cargo build "${CARGO_FLAGS[@]}" --workspace --all-features

echo "==> cargo test --doc"
cargo test "${CARGO_FLAGS[@]}" --workspace --doc -q

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build "${CARGO_FLAGS[@]}" --release
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> oracle conformance: brute force vs every DP path (serial/cached/incremental)"
cargo test "${CARGO_FLAGS[@]}" --test dp_oracle -q

echo "==> planner_sweep smoke bench (fails if incremental and serial plans diverge)"
# Writes BENCH_planner_sweep.json at the workspace root; the bench itself
# panics (non-zero exit) on any plan divergence or a warm-sweep speedup
# below the 1.5x floor.
cargo bench "${CARGO_FLAGS[@]}" -p galvatron-bench --bench planner_sweep
test -s BENCH_planner_sweep.json || { echo "BENCH_planner_sweep.json missing" >&2; exit 1; }

echo "==> serve crate suites (unit + fingerprint stability contract)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-serve -q
cargo test "${CARGO_FLAGS[@]}" -p galvatron-cluster --test fingerprint_stability -q

echo "==> fleet crate suites (ring properties + loopback fleet e2e)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-fleet -q

echo "==> trace suites (obs trace unit tests + seeded span-structure determinism"
echo "    across a kill-failover hop)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-obs -q
cargo test "${CARGO_FLAGS[@]}" -p galvatron-fleet --test trace_determinism -q

echo "==> galvatron-served loopback smoke (bind, announce, quit)"
# The daemon prints its bound address on stdout and exits on stdin EOF.
addr=$(echo quit | cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-serve --bin galvatron-served -- --addr 127.0.0.1:0 --workers 1 2>/dev/null)
case "$addr" in
    127.0.0.1:*) ;;
    *) echo "galvatron-served did not announce a bound address (got: $addr)" >&2; exit 1 ;;
esac

echo "==> galvatron-fleet-router 3-replica loopback smoke (bind, announce, quit)"
# First stdout line is the router address, then one line per replica.
fleet_out=$(echo quit | cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-fleet --bin galvatron-fleet-router -- --replicas 3 2>/dev/null)
case "$fleet_out" in
    127.0.0.1:*) ;;
    *) echo "galvatron-fleet-router did not announce a router address (got: $fleet_out)" >&2; exit 1 ;;
esac
replica_lines=$(printf '%s\n' "$fleet_out" | grep -c '^replica ') || true
if [ "$replica_lines" -ne 3 ]; then
    echo "galvatron-fleet-router announced $replica_lines replicas, expected 3" >&2
    exit 1
fi

echo "==> hetero crate suites (unit + property tests) and the 120-instance oracle"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-hetero -q
cargo test "${CARGO_FLAGS[@]}" --test hetero_oracle -q

echo "==> hetero acceptance bench (fails unless a mixed deployment beats the best"
echo "    homogeneous island on samples-per-dollar for >=1 zoo model, or the"
echo "    cluster-advisor sweep is non-deterministic)"
# Writes BENCH_hetero.json at the workspace root.
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-hetero --bin galvatron-hetero
test -s BENCH_hetero.json || { echo "BENCH_hetero.json missing" >&2; exit 1; }

echo "==> serve load bench (fails below 5x warm-over-cold, herd >1 compute, or no shed)"
# Writes BENCH_serve.json at the workspace root.
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-fleet --bin galvatron-bench-serve
test -s BENCH_serve.json || { echo "BENCH_serve.json missing" >&2; exit 1; }

echo "==> fleet bench: 3 replicas behind the router (fails on any cross-replica"
echo "    byte mismatch, cold DP after warm-join, or a dropped answer after a kill)"
# Writes BENCH_fleet.json at the workspace root, plus the trace-phase gate:
# the traced request's attribution phases must sum to within 5% of the
# client-observed latency, its spans must form one linked router->replica->
# planner tree, and /trace/slow must be non-empty after the traced zipf
# phase (BENCH_trace.json + BENCH_trace_spans.jsonl at the workspace root).
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-fleet --bin galvatron-bench-serve -- --fleet 3 --max-batch 8
test -s BENCH_fleet.json || { echo "BENCH_fleet.json missing" >&2; exit 1; }
test -s BENCH_trace.json || { echo "BENCH_trace.json missing" >&2; exit 1; }
test -s BENCH_trace_spans.jsonl || { echo "BENCH_trace_spans.jsonl missing" >&2; exit 1; }

echo "==> galvatron-trace attribution report (replays the bench span dump)"
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-obs --bin galvatron-trace -- \
    --spans BENCH_trace_spans.jsonl --chrome-out TRACE_fleet.json
test -s TRACE_fleet.json || { echo "TRACE_fleet.json missing" >&2; exit 1; }

echo "==> all checks passed"
