#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> no eprintln! in library code (binaries under crates/*/src/bin are exempt)"
if grep -rn 'eprintln!' crates/*/src --include='*.rs' | grep -v '/src/bin/'; then
    echo "library crates must log through the obs span sinks, not eprintln!" >&2
    exit 1
fi

echo "==> cargo build --all-features"
cargo build "${CARGO_FLAGS[@]}" --workspace --all-features

echo "==> cargo test --doc"
cargo test "${CARGO_FLAGS[@]}" --workspace --doc -q

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build "${CARGO_FLAGS[@]}" --release
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> oracle conformance: brute force vs every DP path (serial/cached/incremental)"
cargo test "${CARGO_FLAGS[@]}" --test dp_oracle -q

echo "==> planner_sweep smoke bench (fails if incremental and serial plans diverge)"
# Writes BENCH_planner_sweep.json at the workspace root; the bench itself
# panics (non-zero exit) on any plan divergence or a warm-sweep speedup
# below the 1.5x floor.
cargo bench "${CARGO_FLAGS[@]}" -p galvatron-bench --bench planner_sweep
test -s BENCH_planner_sweep.json || { echo "BENCH_planner_sweep.json missing" >&2; exit 1; }

echo "==> serve crate suites (unit + fingerprint stability contract)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-serve -q
cargo test "${CARGO_FLAGS[@]}" -p galvatron-cluster --test fingerprint_stability -q

echo "==> galvatron-served loopback smoke (bind, announce, quit)"
# The daemon prints its bound address on stdout and exits on stdin EOF.
addr=$(echo quit | cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-serve --bin galvatron-served -- --addr 127.0.0.1:0 --workers 1 2>/dev/null)
case "$addr" in
    127.0.0.1:*) ;;
    *) echo "galvatron-served did not announce a bound address (got: $addr)" >&2; exit 1 ;;
esac

echo "==> serve load bench (fails below 5x warm-over-cold, herd >1 compute, or no shed)"
# Writes BENCH_serve.json at the workspace root.
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-serve --bin galvatron-bench-serve
test -s BENCH_serve.json || { echo "BENCH_serve.json missing" >&2; exit 1; }

echo "==> all checks passed"
