#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh [--offline] [--full]
#   --full additionally runs the oracle stress lane
#   (scripts/oracle_stress.sh: PROPTEST_CASES=2048 differential fuzz plus
#   the full oracle wall and golden snapshots, release mode).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
FULL=0
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        --full) FULL=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> no eprintln! in library code (binaries under crates/*/src/bin are exempt)"
if grep -rn 'eprintln!' crates/*/src --include='*.rs' | grep -v '/src/bin/'; then
    echo "library crates must log through the obs span sinks, not eprintln!" >&2
    exit 1
fi

echo "==> cargo build --all-features"
cargo build "${CARGO_FLAGS[@]}" --workspace --all-features

echo "==> cargo test --doc"
cargo test "${CARGO_FLAGS[@]}" --workspace --doc -q

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build "${CARGO_FLAGS[@]}" --release
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> oracle conformance: brute force vs every DP path (serial/arena/cached/incremental)"
cargo test "${CARGO_FLAGS[@]}" --test dp_oracle -q

echo "==> tier-2 (release): oracle wall + differential fuzz + golden snapshots"
# The same bit-identity suites again, but release-compiled: the arena DP's
# unsafe-free but heavily windowed hot path must agree with the reference
# under release codegen (different FP contraction and bounds-check
# elision), not just under the opt-level-2 test profile.
cargo test "${CARGO_FLAGS[@]}" --release -q \
    --test dp_oracle --test dp_fuzz_differential \
    --test golden_plans --test golden_scale

echo "==> planner_sweep bench (fails on plan divergence or a speedup floor breach)"
# Writes BENCH_planner_sweep.json at the workspace root; the bench itself
# panics (non-zero exit) on any plan divergence from serial, a cold-sweep
# speedup below the 10x floor, a 64-GPU/100-layer cold speedup below the
# 5x floor, or a warm-sweep speedup below the 1.5x floor.
cargo bench "${CARGO_FLAGS[@]}" -p galvatron-bench --bench planner_sweep
test -s BENCH_planner_sweep.json || { echo "BENCH_planner_sweep.json missing" >&2; exit 1; }

echo "==> serve crate suites (unit + fingerprint stability contract)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-serve -q
cargo test "${CARGO_FLAGS[@]}" -p galvatron-cluster --test fingerprint_stability -q

echo "==> fleet crate suites (ring properties + loopback fleet e2e)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-fleet -q

echo "==> trace suites (obs trace unit tests + seeded span-structure determinism"
echo "    across a kill-failover hop)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-obs -q
cargo test "${CARGO_FLAGS[@]}" -p galvatron-fleet --test trace_determinism -q

echo "==> galvatron-served loopback smoke (bind, announce, quit)"
# The daemon prints its bound address on stdout and exits on stdin EOF.
addr=$(echo quit | cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-serve --bin galvatron-served -- --addr 127.0.0.1:0 --workers 1 2>/dev/null)
case "$addr" in
    127.0.0.1:*) ;;
    *) echo "galvatron-served did not announce a bound address (got: $addr)" >&2; exit 1 ;;
esac

echo "==> galvatron-fleet-router 3-replica loopback smoke (bind, announce, quit)"
# First stdout line is the router address, then one line per replica.
fleet_out=$(echo quit | cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-fleet --bin galvatron-fleet-router -- --replicas 3 2>/dev/null)
case "$fleet_out" in
    127.0.0.1:*) ;;
    *) echo "galvatron-fleet-router did not announce a router address (got: $fleet_out)" >&2; exit 1 ;;
esac
replica_lines=$(printf '%s\n' "$fleet_out" | grep -c '^replica ') || true
if [ "$replica_lines" -ne 3 ]; then
    echo "galvatron-fleet-router announced $replica_lines replicas, expected 3" >&2
    exit 1
fi

echo "==> hetero crate suites (unit + property tests) and the 120-instance oracle"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-hetero -q
cargo test "${CARGO_FLAGS[@]}" --test hetero_oracle -q

echo "==> hetero acceptance bench (fails unless a mixed deployment beats the best"
echo "    homogeneous island on samples-per-dollar for >=1 zoo model, or the"
echo "    cluster-advisor sweep is non-deterministic)"
# Writes BENCH_hetero.json at the workspace root.
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-hetero --bin galvatron-hetero
test -s BENCH_hetero.json || { echo "BENCH_hetero.json missing" >&2; exit 1; }

echo "==> bmw crate suites (knob corners, 6 GiB unlock, determinism) + per-layer"
echo "    recompute extension (On ≡ global flag bit-for-bit, Auto never loses)"
cargo test "${CARGO_FLAGS[@]}" -p galvatron-bmw -q
cargo test "${CARGO_FLAGS[@]}" --test recompute_extension -q

echo "==> bmw acceptance bench (fails unless recompute + memory-balanced stages"
echo "    beat the four-paradigm baseline — feasibility or throughput — at >=1"
echo "    model x budget point, every winner re-simulated against its budget)"
# Writes BENCH_bmw.json at the workspace root.
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-bmw --bin galvatron-bmw
test -s BENCH_bmw.json || { echo "BENCH_bmw.json missing" >&2; exit 1; }

echo "==> serve load bench (fails below 5x warm-over-cold, herd >1 compute, or no shed)"
# Writes BENCH_serve.json at the workspace root.
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-fleet --bin galvatron-bench-serve
test -s BENCH_serve.json || { echo "BENCH_serve.json missing" >&2; exit 1; }

echo "==> fleet bench: 3 replicas behind the router (fails on any cross-replica"
echo "    byte mismatch, cold DP after warm-join, or a dropped answer after a kill)"
# Writes BENCH_fleet.json at the workspace root, plus the trace-phase gate:
# the traced request's attribution phases must sum to within 5% of the
# client-observed latency, its spans must form one linked router->replica->
# planner tree, and /trace/slow must be non-empty after the traced zipf
# phase (BENCH_trace.json + BENCH_trace_spans.jsonl at the workspace root).
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-fleet --bin galvatron-bench-serve -- --fleet 3 --max-batch 8
test -s BENCH_fleet.json || { echo "BENCH_fleet.json missing" >&2; exit 1; }
test -s BENCH_trace.json || { echo "BENCH_trace.json missing" >&2; exit 1; }
test -s BENCH_trace_spans.jsonl || { echo "BENCH_trace_spans.jsonl missing" >&2; exit 1; }

echo "==> galvatron-trace attribution report (replays the bench span dump)"
cargo run "${CARGO_FLAGS[@]}" --release -q -p galvatron-obs --bin galvatron-trace -- \
    --spans BENCH_trace_spans.jsonl --chrome-out TRACE_fleet.json
test -s TRACE_fleet.json || { echo "TRACE_fleet.json missing" >&2; exit 1; }

if [ "$FULL" -eq 1 ]; then
    echo "==> oracle stress lane (scripts/oracle_stress.sh, PROPTEST_CASES=2048)"
    stress_line=$(scripts/oracle_stress.sh)
    printf '%s\n' "$stress_line"
    case "$stress_line" in
        "oracle-stress: ok"*) ;;
        *) echo "oracle stress lane did not report ok (got: $stress_line)" >&2; exit 1 ;;
    esac
fi

echo "==> all checks passed"
