#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build "${CARGO_FLAGS[@]}" --release
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> all checks passed"
