#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
        --offline) CARGO_FLAGS+=(--offline) ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> no eprintln! in library code (binaries under crates/*/src/bin are exempt)"
if grep -rn 'eprintln!' crates/*/src --include='*.rs' | grep -v '/src/bin/'; then
    echo "library crates must log through the obs span sinks, not eprintln!" >&2
    exit 1
fi

echo "==> cargo build --all-features"
cargo build "${CARGO_FLAGS[@]}" --workspace --all-features

echo "==> cargo test --doc"
cargo test "${CARGO_FLAGS[@]}" --workspace --doc -q

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build "${CARGO_FLAGS[@]}" --release
cargo test "${CARGO_FLAGS[@]}" -q

echo "==> oracle conformance: brute force vs every DP path (serial/cached/incremental)"
cargo test "${CARGO_FLAGS[@]}" --test dp_oracle -q

echo "==> planner_sweep smoke bench (fails if incremental and serial plans diverge)"
# Writes BENCH_planner_sweep.json at the workspace root; the bench itself
# panics (non-zero exit) on any plan divergence or a warm-sweep speedup
# below the 1.5x floor.
cargo bench "${CARGO_FLAGS[@]}" -p galvatron-bench --bench planner_sweep
test -s BENCH_planner_sweep.json || { echo "BENCH_planner_sweep.json missing" >&2; exit 1; }

echo "==> all checks passed"
