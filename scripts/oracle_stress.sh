#!/usr/bin/env bash
# Nightly-style DP-oracle stress lane: the full seeded oracle wall, the
# golden-plan snapshots, and the differential fuzz harness cranked to
# PROPTEST_CASES=2048, all in release mode.
#
# Since the BMW extension the fuzzed instance space includes the
# recompute dimension: every case draws a RecomputeMode (off/on/auto)
# and the brute-force reference enumerates both per-layer planes, so
# the serial/arena/cached/incremental equivalences are stressed over
# the enlarged (strategy, recompute) decision space too.
#
# Prints exactly ONE summary line on stdout, e.g.
#   oracle-stress: ok cases=2048 suites=4 seconds=37
# (all cargo output goes to stderr), so scripts/check.sh --full — or a cron
# job — can consume the verdict without parsing test logs. Any failing
# suite aborts before the summary line is printed (set -e), so a missing
# or non-"ok" line IS the failure signal.
#
# Override the fuzz case count with PROPTEST_CASES=<n>.
set -euo pipefail
cd "$(dirname "$0")/.."

CASES="${PROPTEST_CASES:-2048}"
start=$(date +%s)
{
    echo "==> oracle wall (410 seeded instances, release)"
    cargo test --release -q --test dp_oracle
    echo "==> differential fuzz, PROPTEST_CASES=$CASES (release)"
    PROPTEST_CASES="$CASES" cargo test --release -q --test dp_fuzz_differential
    echo "==> golden plan snapshots (Table-1 zoo + 64-GPU/100-layer scale point)"
    cargo test --release -q --test golden_plans
    cargo test --release -q --test golden_scale
} >&2
end=$(date +%s)

echo "oracle-stress: ok cases=$CASES suites=4 seconds=$((end - start))"
